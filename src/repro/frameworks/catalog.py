"""Framework catalogs: PyTorch 2.3.1, TensorFlow 2.16.2, vLLM 0.6.3,
Transformers 4.42.3 (the versions in paper Table 1).

Library sizes, function counts, and fatbin element counts follow the paper's
reported magnitudes (Tables 2/3, Fig. 1): e.g. ``libtorch_cuda.so`` is 841 MB
with 42 MB of CPU code across 78K functions and 729 MB of GPU code across
2,324 elements (387 cubins x 6 architectures).  Feature tags reproduce the
workload-dependent library sets: the cuDNN convolution family loads only for
conv models (hence MobileNetV2's 113 libraries vs the Transformer's 154, and
the train-only cuDNN libraries explaining 113 vs 111).

PyTorch and Transformers share one torch build (build id ``torch-2.3.1``) so
their ``libtorch_cuda.so`` is byte-identical - the premise of the paper's
Table 4 cross-workload comparison - while vLLM bundles a different torch
build and is excluded there, as in the paper.
"""

from __future__ import annotations

import threading
from functools import lru_cache

from repro.cuda.arch import SHIPPED_ARCHITECTURES
from repro.errors import ConfigurationError
from repro.frameworks.genlib import generated_library, generation_identity
from repro.frameworks.ops import OpKind
from repro.frameworks.spec import Framework, FrameworkSpec, LibrarySpec, MemoryPolicy
from repro.utils.rng import RngStream

FRAMEWORK_NAMES = ("pytorch", "tensorflow", "vllm", "transformers")

# Op kinds torch-family compute libraries implement natively.
_TORCH_NATIVE_KINDS = (
    OpKind.GEMM,
    OpKind.ELEMENTWISE,
    OpKind.ACTIVATION,
    OpKind.SOFTMAX,
    OpKind.LAYERNORM,
    OpKind.RMSNORM,
    OpKind.POOL,
    OpKind.EMBEDDING,
    OpKind.ATTENTION,
    OpKind.REDUCE,
    OpKind.DROPOUT,
    OpKind.LOSS,
    OpKind.OPTIMIZER,
    OpKind.RNG,
    OpKind.BATCHNORM,
    OpKind.ROPE,
    OpKind.SAMPLING,
)
_TORCH_KIND_WEIGHTS = (
    3.0,  # GEMM: cutlass-style variant explosion
    2.0,  # ELEMENTWISE
    1.2,  # ACTIVATION
    0.8,  # SOFTMAX
    0.8,  # LAYERNORM
    0.5,  # RMSNORM
    0.8,  # POOL
    0.6,  # EMBEDDING
    1.6,  # ATTENTION
    1.2,  # REDUCE
    0.5,  # DROPOUT
    0.5,  # LOSS
    0.8,  # OPTIMIZER
    0.4,  # RNG
    0.9,  # BATCHNORM
    0.3,  # ROPE
    0.4,  # SAMPLING
)


# ---------------------------------------------------------------------------
# NVIDIA vendor libraries (proprietary: analyzed from binaries only)
# ---------------------------------------------------------------------------


def nvidia_libraries() -> tuple[LibrarySpec, ...]:
    """The CUDA-ecosystem libraries ML frameworks bundle via pip wheels."""
    conv = frozenset({"conv"})
    conv_train = frozenset({"conv", "train"})
    return (
        # cuDNN dispatcher: CPU-side heuristics only, no fatbin of its own.
        LibrarySpec(
            "libcudnn.so.8", file_mb=110, text_mb=38, n_functions=21_000,
            op_kinds=(OpKind.CONV2D, OpKind.DEPTHWISE_CONV, OpKind.BATCHNORM),
            op_pool_fraction=0.04, op_pool_used_fraction=0.2,
            requires=conv, proprietary=True,
        ),
        LibrarySpec(
            "libcudnn_cnn_infer.so.8", file_mb=420, text_mb=18,
            n_functions=6_000, gpu_mb=330, n_cubins=542,
            op_kinds=(OpKind.CONV2D, OpKind.DEPTHWISE_CONV),
            op_kind_weights=(0.7, 0.3),
            requires=conv, proprietary=True,
        ),
        LibrarySpec(
            "libcudnn_cnn_train.so.8", file_mb=260, text_mb=12,
            n_functions=4_000, gpu_mb=196, n_cubins=342,
            op_kinds=(OpKind.CONV2D, OpKind.DEPTHWISE_CONV),
            op_kind_weights=(0.7, 0.3),
            requires=conv_train, proprietary=True,
        ),
        LibrarySpec(
            "libcudnn_ops_infer.so.8", file_mb=130, text_mb=8,
            n_functions=3_500, gpu_mb=96, n_cubins=157,
            op_kinds=(OpKind.BATCHNORM, OpKind.POOL, OpKind.ACTIVATION),
            requires=conv, proprietary=True,
        ),
        LibrarySpec(
            "libcudnn_ops_train.so.8", file_mb=90, text_mb=6,
            n_functions=2_500, gpu_mb=65, n_cubins=108,
            op_kinds=(OpKind.BATCHNORM, OpKind.ACTIVATION),
            requires=conv_train, proprietary=True,
        ),
        LibrarySpec(
            "libcublas.so.12", file_mb=250, text_mb=20, n_functions=9_000,
            gpu_mb=230, n_cubins=258, op_kinds=(OpKind.GEMM,),
            proprietary=True,
        ),
        LibrarySpec(
            "libcublasLt.so.12", file_mb=371, text_mb=17, n_functions=8_000,
            gpu_mb=290, n_cubins=274, op_kinds=(OpKind.GEMM,),
            proprietary=True,
        ),
        # cuSPARSE/cuFFT load with the frameworks but none of the evaluated
        # models exercises them: 100% of their matching-arch elements are
        # Reason-II bloat (paper Fig. 5b: every library loses >80% of
        # elements).
        LibrarySpec(
            "libcusparse.so.12", file_mb=165, text_mb=9, n_functions=6_000,
            gpu_mb=150, n_cubins=116, op_kinds=(OpKind.REDUCE,),
            proprietary=True,
        ),
        LibrarySpec(
            "libcufft.so.11", file_mb=95, text_mb=5, n_functions=5_000,
            gpu_mb=80, n_cubins=93, op_kinds=(OpKind.ELEMENTWISE,),
            proprietary=True,
        ),
        LibrarySpec(
            "libcurand.so.10", file_mb=42, text_mb=3, n_functions=2_000,
            gpu_mb=35, n_cubins=41, op_kinds=(OpKind.RNG,),
            proprietary=True,
        ),
        LibrarySpec(
            "libnccl.so.2", file_mb=95, text_mb=10, n_functions=4_000,
            gpu_mb=78, n_cubins=25, op_kinds=(OpKind.COLLECTIVE,),
            proprietary=True,
        ),
        LibrarySpec("libnvrtc.so.12", file_mb=40, text_mb=12, n_functions=12_000,
                    proprietary=True),
        LibrarySpec("libcudart.so.12", file_mb=3.6, text_mb=1.8,
                    n_functions=1_800, proprietary=True),
        LibrarySpec("libcupti.so.12", file_mb=8, text_mb=4, n_functions=2_200,
                    proprietary=True),
        LibrarySpec("libnvToolsExt.so.1", file_mb=0.12, text_mb=0.05,
                    n_functions=120, proprietary=True),
        LibrarySpec("libnvjitlink.so.12", file_mb=30, text_mb=10,
                    n_functions=9_000, proprietary=True),
    )


NVIDIA_GPU_ROUTING = {
    OpKind.CONV2D: {
        "fwd": ("libcudnn_cnn_infer.so.8",),
        "bwd": ("libcudnn_cnn_train.so.8",),
    },
    OpKind.DEPTHWISE_CONV: {
        "fwd": ("libcudnn_cnn_infer.so.8",),
        "bwd": ("libcudnn_cnn_train.so.8",),
    },
    OpKind.BATCHNORM: {
        "fwd": ("libcudnn_ops_infer.so.8",),
        "bwd": ("libcudnn_ops_train.so.8",),
    },
    OpKind.COLLECTIVE: {"any": ("libnccl.so.2",)},
}


# ---------------------------------------------------------------------------
# Generic system / Python-environment libraries
# ---------------------------------------------------------------------------

_SYSTEM_LIB_NAMES = (
    "libc.so.6", "libstdc++.so.6", "libm.so.6", "libpthread.so.0",
    "libdl.so.2", "librt.so.1", "ld-linux-x86-64.so.2", "libgcc_s.so.1",
    "libz.so.1", "libbz2.so.1.0", "liblzma.so.5", "libffi.so.8",
    "libexpat.so.1", "libssl.so.3", "libcrypto.so.3", "libuuid.so.1",
    "libsqlite3.so.0", "libreadline.so.8", "libtinfo.so.6", "libgomp.so.1",
    "libnuma.so.1", "libopenblas.so.0", "libgfortran.so.5", "libquadmath.so.0",
)

_PYTHON_EXT_NAMES = (
    "_ssl.cpython-311.so", "_hashlib.cpython-311.so", "_json.cpython-311.so",
    "_pickle.cpython-311.so", "_struct.cpython-311.so", "array.cpython-311.so",
    "math.cpython-311.so", "_socket.cpython-311.so", "select.cpython-311.so",
    "_posixsubprocess.cpython-311.so", "zlib.cpython-311.so",
    "_multiarray_umath.cpython-311.so", "_multiarray_tests.cpython-311.so",
    "lapack_lite.cpython-311.so", "_umath_linalg.cpython-311.so",
    "fftpack_lite.cpython-311.so", "mtrand.cpython-311.so",
    "bit_generator.cpython-311.so", "_bounded_integers.cpython-311.so",
)

_VISION_LIB_NAMES = ("libjpeg.so.9", "libpng16.so.16", "libwebp.so.7",
                     "libtiff.so.6")

_TEXT_LIB_NAMES = ("tokenizers.abi3.so", "libsentencepiece.so.0",
                   "_regex.cpython-311.so", "libicuuc.so.70")


def small_library(
    name: str,
    requires: frozenset[str] = frozenset(),
    file_mb: float | None = None,
    n_functions: int | None = None,
) -> LibrarySpec:
    """A generic (non-ML) library with deterministic per-name properties.

    System libraries are mostly *used*: the paper's Fig. 5a shows many
    libraries with only 0-40% CPU code reduction, which here comes from a
    large infra pool (0.55-0.92 of functions) nearly fully touched at
    startup.
    """
    rng = RngStream("smalllib", name)
    u = float(rng.uniform())
    v = float(rng.uniform())
    if file_mb is None:
        file_mb = round(0.3 + 7.0 * u * u, 2)
    if n_functions is None:
        n_functions = int(120 + 700 * v)
    text_mb = round(file_mb * (0.22 + 0.2 * float(rng.uniform())), 3)
    return LibrarySpec(
        name,
        file_mb=file_mb,
        text_mb=text_mb,
        n_functions=n_functions,
        infra_fraction=round(0.5 + 0.38 * float(rng.uniform()), 3),
        infra_used_fraction=round(0.9 + 0.09 * float(rng.uniform()), 3),
        requires=requires,
    )


def _generated_small_libs(prefix: str, count: int,
                          requires: frozenset[str] = frozenset()) -> list[LibrarySpec]:
    return [
        small_library(f"{prefix}_{i:03d}.cpython-311.so", requires=requires)
        for i in range(count)
    ]


def base_system_libraries(extra_py_exts: int) -> list[LibrarySpec]:
    """The always-loaded system + Python environment libraries."""
    specs = [small_library(n) for n in _SYSTEM_LIB_NAMES]
    # libopenblas and libcrypto are the big generic outliers.
    specs = [
        s if s.soname != "libopenblas.so.0" else LibrarySpec(
            "libopenblas.so.0", file_mb=35, text_mb=22, n_functions=8_000,
            infra_fraction=0.35, infra_used_fraction=0.9,
        )
        for s in specs
    ]
    specs.extend(small_library(n) for n in _PYTHON_EXT_NAMES)
    specs.extend(_generated_small_libs("py_ext", extra_py_exts))
    return specs


def vision_libraries() -> list[LibrarySpec]:
    return [small_library(n, requires=frozenset({"vision"}))
            for n in _VISION_LIB_NAMES]


def text_libraries(extra: int) -> list[LibrarySpec]:
    specs = [small_library(n, requires=frozenset({"text"}))
             for n in _TEXT_LIB_NAMES]
    specs.extend(
        _generated_small_libs("text_ext", extra, requires=frozenset({"text"}))
    )
    return specs


# ---------------------------------------------------------------------------
# PyTorch
# ---------------------------------------------------------------------------


def torch_core_libraries(version: str, cuda_mb: float = 841,
                         cuda_gpu_mb: float = 729,
                         cuda_cubins: int = 387) -> tuple[LibrarySpec, ...]:
    """The libtorch family (version-parameterized for the vLLM bundle)."""
    return (
        LibrarySpec(
            "libtorch_cuda.so", file_mb=cuda_mb, text_mb=42,
            n_functions=78_000, gpu_mb=cuda_gpu_mb, n_cubins=cuda_cubins,
            op_kinds=_TORCH_NATIVE_KINDS, op_kind_weights=_TORCH_KIND_WEIGHTS,
            infra_fraction=0.035, op_pool_fraction=0.012,
            op_pool_used_fraction=0.14,
        ),
        LibrarySpec(
            "libtorch_cpu.so", file_mb=482, text_mb=300, n_functions=330_000,
            op_kinds=_TORCH_NATIVE_KINDS,
            infra_fraction=0.030, op_pool_fraction=0.014,
            op_pool_used_fraction=0.12,
        ),
        LibrarySpec(
            "libtorch_python.so", file_mb=210, text_mb=40, n_functions=95_000,
            op_kinds=_TORCH_NATIVE_KINDS,
            infra_fraction=0.040, op_pool_fraction=0.010,
            op_pool_used_fraction=0.12,
        ),
        LibrarySpec(
            "libc10.so", file_mb=6.5, text_mb=4.0, n_functions=12_000,
            infra_fraction=0.30, infra_used_fraction=0.85,
        ),
        LibrarySpec(
            "libc10_cuda.so", file_mb=4.2, text_mb=2.5, n_functions=6_000,
            infra_fraction=0.28, infra_used_fraction=0.85,
        ),
        LibrarySpec("libtorch.so", file_mb=0.6, text_mb=0.1, n_functions=300,
                    infra_fraction=0.5, infra_used_fraction=0.9),
        LibrarySpec("libshm.so", file_mb=0.9, text_mb=0.3, n_functions=800,
                    infra_fraction=0.4),
        LibrarySpec("libcaffe2_nvrtc.so", file_mb=1.2, text_mb=0.5,
                    n_functions=1_000, infra_fraction=0.3),
    )


def _torch_routing() -> dict:
    routing = {
        kind: {"any": ("libtorch_cuda.so",)} for kind in _TORCH_NATIVE_KINDS
    }
    routing[OpKind.GEMM] = {
        "any": ("libcublas.so.12", "libcublasLt.so.12", "libtorch_cuda.so")
    }
    routing[OpKind.RNG] = {"any": ("libcurand.so.10", "libtorch_cuda.so")}
    routing.update(NVIDIA_GPU_ROUTING)
    return routing


@lru_cache(maxsize=None)
def pytorch_spec() -> FrameworkSpec:
    libraries = (
        *torch_core_libraries("2.3.1"),
        *nvidia_libraries(),
        *base_system_libraries(extra_py_exts=42),
        *vision_libraries(),
        *text_libraries(extra=46),
    )
    return FrameworkSpec(
        name="pytorch",
        version="2.3.1",
        libraries=libraries,
        memory=MemoryPolicy(kind="on_demand", python_overhead_mb=900),
        kernel_routing=_torch_routing(),
        cpu_dispatch_libs=("libtorch_python.so", "libtorch_cpu.so",
                           "libtorch_cuda.so"),
        cpu_tax_fraction=0.45,
        gpu_efficiency=0.18,
        kernels_per_op=6,
        import_time_s=3.5,
        features=frozenset({"cuda"}),
    )


# ---------------------------------------------------------------------------
# TensorFlow
# ---------------------------------------------------------------------------

_TF_KINDS = tuple(k for k in _TORCH_NATIVE_KINDS if k not in
                  (OpKind.RMSNORM, OpKind.ROPE, OpKind.SAMPLING)) + (
    OpKind.CONV2D, OpKind.DEPTHWISE_CONV,
)


@lru_cache(maxsize=None)
def tensorflow_spec() -> FrameworkSpec:
    tf_core = (
        LibrarySpec(
            "libtensorflow_cc.so.2", file_mb=965, text_mb=300,
            n_functions=670_000, gpu_mb=298, n_cubins=273,
            op_kinds=_TF_KINDS,
            # TensorFlow's "used bloat" (paper §5): a far larger share of its
            # CPU code executes without contributing - big infra pool, high
            # per-op usage, hence only ~51% function removal in tf_cc.
            infra_fraction=0.28, infra_used_fraction=0.95,
            op_pool_fraction=0.045, op_pool_used_fraction=0.75,
            hot_function_weight=0.9,
        ),
        LibrarySpec(
            "libtensorflow_framework.so.2", file_mb=220, text_mb=80,
            n_functions=120_000, op_kinds=_TF_KINDS,
            infra_fraction=0.18, infra_used_fraction=0.9,
            op_pool_fraction=0.02, op_pool_used_fraction=0.5,
            hot_function_weight=1.0,
        ),
        LibrarySpec(
            "_pywrap_tensorflow_internal.so", file_mb=60, text_mb=30,
            n_functions=30_000, op_kinds=_TF_KINDS,
            infra_fraction=0.2, op_pool_fraction=0.015,
            op_pool_used_fraction=0.5,
        ),
        LibrarySpec(
            "libcusolver.so.11", file_mb=150, text_mb=8, n_functions=5_000,
            gpu_mb=105, n_cubins=204, op_kinds=(OpKind.GEMM,),
            proprietary=True,
        ),
    )
    pywrap = tuple(
        small_library(f"_pywrap_tf_{name}.so")
        for name in (
            "checkpoint_reader", "events_writer", "file_io", "stat_summarizer",
            "kernel_registry", "graph_analyzer", "transform_graph",
            "device_lib", "py_func", "quantize_training", "util_port",
            "stacktrace_handler", "tfe", "dtensor_device", "parallel_device",
            "profiler_session", "debug_events_writer", "record_io",
            "sanitizers", "toco_api", "mlir", "flags", "saved_model",
            "function_lib", "composite_tensor", "bfloat16", "fast_tensor_util",
            "tensor_float_32", "determinism", "cluster_resolver", "ops_util",
            "tpu_embedding", "string_ops", "sparse_core", "weak_tensor",
        )
    )
    routing = {kind: {"any": ("libtensorflow_cc.so.2",)} for kind in _TF_KINDS}
    routing[OpKind.GEMM] = {
        "any": ("libcublas.so.12", "libcublasLt.so.12", "libtensorflow_cc.so.2")
    }
    routing[OpKind.RNG] = {"any": ("libcurand.so.10",)}
    routing.update(NVIDIA_GPU_ROUTING)
    return FrameworkSpec(
        name="tensorflow",
        version="2.16.2",
        libraries=(
            *tf_core,
            *pywrap,
            *nvidia_libraries(),
            *base_system_libraries(extra_py_exts=151),
            *vision_libraries(),
            *text_libraries(extra=150),
        ),
        memory=MemoryPolicy(kind="pool_fraction", pool_fraction=0.862,
                            python_overhead_mb=1300),
        kernel_routing=routing,
        cpu_dispatch_libs=("_pywrap_tensorflow_internal.so",
                           "libtensorflow_framework.so.2",
                           "libtensorflow_cc.so.2"),
        cpu_tax_fraction=0.10,
        gpu_efficiency=0.90,
        kernels_per_op=6,
        import_time_s=9.0,
        features=frozenset({"cuda"}),
    )


# ---------------------------------------------------------------------------
# vLLM (bundles its own torch 2.4 build - different libtorch_cuda.so)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def vllm_spec() -> FrameworkSpec:
    vllm_native = (
        LibrarySpec(
            "libvllm_C.so", file_mb=85, text_mb=10, n_functions=8_000,
            gpu_mb=60, n_cubins=30,
            op_kinds=(OpKind.PAGED_ATTENTION, OpKind.SAMPLING, OpKind.RMSNORM,
                      OpKind.ROPE),
        ),
        LibrarySpec(
            "libvllm_moe_C.so", file_mb=40, text_mb=4, n_functions=2_500,
            gpu_mb=28, n_cubins=16, op_kinds=(OpKind.GEMM,),
        ),
        LibrarySpec(
            "libvllm_flash_attn_C.so", file_mb=160, text_mb=6,
            n_functions=3_000, gpu_mb=130, n_cubins=36,
            op_kinds=(OpKind.ATTENTION, OpKind.PAGED_ATTENTION),
        ),
        LibrarySpec("libtriton.so", file_mb=90, text_mb=55,
                    n_functions=60_000, infra_fraction=0.12),
        LibrarySpec("_raylet.so", file_mb=45, text_mb=20, n_functions=30_000,
                    infra_fraction=0.15),
        LibrarySpec("libarrow.so.1500", file_mb=60, text_mb=30,
                    n_functions=25_000, infra_fraction=0.12),
    )
    routing = _torch_routing()
    routing[OpKind.PAGED_ATTENTION] = {
        "any": ("libvllm_C.so", "libvllm_flash_attn_C.so")
    }
    routing[OpKind.ATTENTION] = {"any": ("libvllm_flash_attn_C.so",)}
    routing[OpKind.SAMPLING] = {"any": ("libvllm_C.so",)}
    routing[OpKind.RMSNORM] = {"any": ("libvllm_C.so",)}
    routing[OpKind.ROPE] = {"any": ("libvllm_C.so",)}
    return FrameworkSpec(
        name="vllm",
        version="0.6.3",
        libraries=(
            *torch_core_libraries("2.4.0-vllm", cuda_mb=861, cuda_gpu_mb=747,
                                  cuda_cubins=393),
            *nvidia_libraries(),
            *vllm_native,
            *base_system_libraries(extra_py_exts=89),
            *text_libraries(extra=9),
        ),
        memory=MemoryPolicy(kind="utilization_target", pool_fraction=0.9,
                            python_overhead_mb=1600),
        kernel_routing=routing,
        cpu_dispatch_libs=("libtorch_python.so", "libtorch_cpu.so",
                           "libtorch_cuda.so"),
        cpu_tax_fraction=0.3,
        gpu_efficiency=0.5,
        kernels_per_op=4,
        import_time_s=24.0,
        features=frozenset({"cuda", "llm"}),
    )


# ---------------------------------------------------------------------------
# HuggingFace Transformers (shares the PyTorch build's torch libraries)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def transformers_spec() -> FrameworkSpec:
    return FrameworkSpec(
        name="transformers",
        version="4.42.3",
        libraries=(
            *torch_core_libraries("2.3.1"),
            *nvidia_libraries(),
            *base_system_libraries(extra_py_exts=32),
            *text_libraries(extra=0),
        ),
        memory=MemoryPolicy(kind="on_demand", python_overhead_mb=1100),
        kernel_routing=_torch_routing(),
        cpu_dispatch_libs=("libtorch_python.so", "libtorch_cpu.so",
                           "libtorch_cuda.so"),
        cpu_tax_fraction=0.6,
        gpu_efficiency=0.25,
        kernels_per_op=4,
        import_time_s=7.0,
        features=frozenset({"cuda"}),
    )


_SPECS = {
    "pytorch": pytorch_spec,
    "tensorflow": tensorflow_spec,
    "vllm": vllm_spec,
    "transformers": transformers_spec,
}

#: Build id per framework: PyTorch and Transformers share one torch build;
#: vLLM ships its own (paper §4.3).
_BUILD_IDS = {
    "pytorch": "torch-2.3.1",
    "transformers": "torch-2.3.1",
    "vllm": "torch-2.4.0-vllm",
    "tensorflow": "tf-2.16.2",
}

#: Library specs identical across torch-family frameworks are generated with
#: the shared build id so PyTorch and Transformers literally share bytes.
_SHARED_TORCH_SONAMES = {
    s.soname for s in torch_core_libraries("2.3.1")
} | {s.soname for s in nvidia_libraries()} | {
    s.soname for s in base_system_libraries(extra_py_exts=0)
} | {s.soname for s in text_libraries(extra=0)}


def build_id_for(framework: str, soname: str) -> str:
    """The generation identity of one library within a framework bundle."""
    if framework in ("pytorch", "transformers") and soname in _SHARED_TORCH_SONAMES:
        return "torch-2.3.1"
    return _BUILD_IDS[framework]


@lru_cache(maxsize=None)
def framework_build_fingerprint(
    name: str,
    scale: float = 1.0,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> str:
    """A process-stable digest of a framework build's generation inputs.

    Every library a framework bundle generates is a pure function of its
    :func:`~repro.frameworks.genlib.generation_identity` (generator
    version, build id, soname, frozen spec, scale, arch list); hashing the
    identities of the whole bundle therefore fingerprints the framework
    *build*.  Two processes that would generate byte-identical library sets
    produce equal fingerprints, and any change to the generator version, a
    library spec, the build ids, the scale, or the shipped architectures
    changes it.  The disk tier of the pipeline cache keys entries on this
    so persisted reports never survive a framework-build change.
    """
    if name not in _SPECS:
        raise ConfigurationError(
            f"unknown framework {name!r}; known: {FRAMEWORK_NAMES}"
        )
    from repro.core.serialize import stable_digest

    spec = _SPECS[name]()
    return stable_digest(
        name,
        spec.version,
        tuple(
            generation_identity(
                lib_spec, build_id_for(name, lib_spec.soname), scale, archs
            )
            for lib_spec in spec.libraries
        ),
    )


_FRAMEWORK_CACHE: dict[tuple, Framework] = {}

#: Serializes memo fills: concurrent callers (federation shards, server
#: workers) must observe ONE instance per build key - identity checks like
#: :func:`is_canonical_build` and :func:`build_key_for` depend on it - and
#: must never pay the generation cost twice.
_FRAMEWORK_LOCK = threading.RLock()


def get_framework(
    name: str,
    scale: float = 1.0,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> Framework:
    """Generate (or fetch cached) a framework's full library set."""
    if name not in _SPECS:
        raise ConfigurationError(
            f"unknown framework {name!r}; known: {FRAMEWORK_NAMES}"
        )
    key = (name, scale, tuple(archs))
    fw = _FRAMEWORK_CACHE.get(key)
    if fw is not None:
        return fw
    with _FRAMEWORK_LOCK:
        fw = _FRAMEWORK_CACHE.get(key)
        if fw is not None:
            return fw
        spec = _SPECS[name]()
        libraries = {
            lib_spec.soname: generated_library(
                lib_spec, build_id_for(name, lib_spec.soname), scale, archs
            )
            for lib_spec in spec.libraries
        }
        fw = Framework(spec=spec, libraries=libraries, scale=scale)
        _FRAMEWORK_CACHE[key] = fw
        return fw


def clear_framework_cache() -> None:
    _FRAMEWORK_CACHE.clear()


def build_key_for(
    framework: Framework,
) -> tuple[str, float, tuple[int, ...]] | None:
    """The ``(name, scale, archs)`` generation key of a catalog build.

    A memo-table identity scan: returns the key a worker process can feed
    back into :func:`get_framework` to regenerate byte-identical libraries,
    or ``None`` for instances that did not come out of the catalog memo
    (hand-built specs, orphans of :func:`clear_framework_cache`) - those
    cannot be re-derived remotely and callers must stay in-process.
    """
    for key, cached in _FRAMEWORK_CACHE.items():
        if cached is framework:
            return key
    return None


def is_canonical_build(framework: Framework) -> bool:
    """True iff ``framework`` is the memoized default-archs catalog build.

    A pure memo-table peek: never triggers a build.  Any canonical
    instance necessarily came out of :func:`get_framework` and therefore
    sits in the memo under the default-archs key; custom specs, ablation
    arch lists, and instances orphaned by :func:`clear_framework_cache`
    all fail the identity check.
    """
    key = (framework.name, framework.scale, tuple(SHIPPED_ARCHITECTURES))
    return _FRAMEWORK_CACHE.get(key) is framework

"""Deterministic library generation from specs.

The generator and the framework runtime share one source of truth - the
:class:`LibraryLayout` planned here - so the kernels the runtime launches are
exactly the kernels the generated fatbin contains, and the CPU functions ops
touch are exactly symbols in the generated ``.text``.  Everything derives
from :class:`~repro.utils.rng.RngStream` seeded with (build id, soname), so
two frameworks bundling "the same" library (e.g. PyTorch and Transformers
sharing ``libtorch_cuda.so``) get byte-identical copies, while vLLM's
different torch build gets a different one (paper §4.3 excludes vLLM from
the Table 4 comparison for exactly this reason).

Bloat structure encoded here, with the paper section it reproduces:

* six-architecture fatbins - Reason I element bloat (§4.3, Fig. 7);
* per-op-kind kernel *variant* cubins of which only a few "hot" ones are
  runtime-selectable - Reason II bloat and the low kernel Jaccard (Table 4);
* heavy-tailed cubin sizes with hot variants holding most bytes - GPU size
  reduction (~75%) far below element count reduction (~98%) (Table 2);
* infrastructure / per-op / cold CPU function pools - high function Jaccard
  across workloads and ~90% function-count reductions in ML libraries
  against ~10-40% in generic system libraries (Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.arch import ARCH_BYTE_WEIGHTS, SHIPPED_ARCHITECTURES
from repro.elf import constants as EC
from repro.elf.builder import ElfBuilder
from repro.elf.image import SharedLibrary
from repro.elf.parser import parse_shared_library
from repro.elf.symtab import SymbolTable
from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin
from repro.frameworks.ops import OpKind
from repro.frameworks.spec import LibrarySpec
from repro.utils.rng import RngStream, stable_seed

#: Share of cubins that belong to no op kind (dead device code).
MISC_CUBIN_SHARE = 0.20
#: Byte share of the misc cubins (they are numerous but small).
MISC_BYTE_SHARE = 0.08
#: Byte share of the "core" cubins: the universal fill/copy/cast/reduce
#: kernel families every workload touching the library resolves.  Few and
#: huge - the reason the paper sees ~98% of *elements* removed but only
#: ~75-82% of GPU *bytes* (retained cubins are ~12x the average element).
CORE_BYTE_SHARE = 0.26
CORE_CUBIN_COUNT = 3
CORE_KIND = "core"
#: Maximum number of runtime-selectable ("hot") variants per op kind.
MAX_HOT_VARIANTS = 6


@dataclass(frozen=True)
class CubinPlan:
    """Plan for one cubin (replicated across architectures)."""

    kind: str  # OpKind value or "misc"
    variant: int
    names: tuple[str, ...]
    entry_count: int
    edges: tuple[tuple[int, int], ...]
    code_bytes_by_arch: dict[int, int]

    def entry_names(self) -> tuple[str, ...]:
        return self.names[: self.entry_count]


@dataclass
class LibraryLayout:
    """Shared generation/runtime directory for one library."""

    soname: str
    n_functions: int
    archs: tuple[int, ...]
    #: Symbol indices of infrastructure functions touched at startup.
    infra_used: np.ndarray
    #: Op kind value -> symbol indices touched when that kind executes here.
    op_used: dict[str, np.ndarray]
    #: All cubin plans in element order (one region per arch, same order).
    cubin_plans: list[CubinPlan] = field(default_factory=list)
    plans_by_kind: dict[str, list[CubinPlan]] = field(default_factory=dict)

    def variant_count(self, kind: OpKind) -> int:
        return len(self.plans_by_kind.get(kind.value, ()))

    def hot_variant_count(self, kind: OpKind) -> int:
        return min(MAX_HOT_VARIANTS, self.variant_count(kind))

    def entry_kernels(self, kind: OpKind, variant: int) -> tuple[str, ...]:
        plans = self.plans_by_kind.get(kind.value)
        if not plans:
            return ()
        return plans[variant % len(plans)].entry_names()

    def core_plans(self) -> list[CubinPlan]:
        """The universal kernel-family cubins (resolved on first library use)."""
        return self.plans_by_kind.get(CORE_KIND, [])


def _prefix(soname: str) -> str:
    name = soname
    if name.startswith("lib"):
        name = name[3:]
    return name.split(".so")[0].replace(".", "_").replace("-", "_")


def _allocate_counts(total: int, weights: list[float]) -> list[int]:
    """Largest-remainder apportionment of ``total`` among ``weights``."""
    if total <= 0 or not weights:
        return [0] * len(weights)
    w = np.asarray(weights, dtype=np.float64)
    w = w / w.sum()
    raw = w * total
    counts = np.floor(raw).astype(int)
    # Everything with weight > 0 gets at least one.
    counts[(counts == 0) & (w > 0)] = 1
    deficit = total - counts.sum()
    if deficit > 0:
        order = np.argsort(raw - counts)[::-1]
        for i in order[:deficit]:
            counts[i] += 1
    elif deficit < 0:
        order = np.argsort(counts)[::-1]
        i = 0
        while deficit < 0 and i < len(order):
            if counts[order[i]] > 1:
                counts[order[i]] -= 1
                deficit += 1
            else:
                i += 1
    return counts.tolist()


def plan_layout(
    spec: LibrarySpec,
    build_id: str,
    scale: float = 1.0,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> tuple[LibraryLayout, np.ndarray, list[str]]:
    """Plan a library: returns (layout, function sizes, function names)."""
    rng = RngStream("genlib", build_id, spec.soname)
    prefix = _prefix(spec.soname)

    # ---- CPU functions -------------------------------------------------------
    n = max(8, int(round(spec.n_functions * scale)))
    n_infra = max(2, int(round(spec.infra_fraction * n)))
    kinds = [k.value for k in spec.op_kinds]
    pool_each = max(1, int(round(spec.op_pool_fraction * n))) if kinds else 0
    budget = n - n_infra
    if kinds and pool_each * len(kinds) > 0.8 * budget:
        pool_each = max(1, int(0.8 * budget / len(kinds)))

    names: list[str] = []
    names.extend(f"{prefix}::infra::f{i:06d}" for i in range(n_infra))
    op_used: dict[str, np.ndarray] = {}
    cursor = n_infra
    for kind in kinds:
        names.extend(f"{prefix}::{kind}::f{i:06d}" for i in range(pool_each))
        used = max(1, int(round(spec.op_pool_used_fraction * pool_each)))
        op_used[kind] = np.arange(cursor, cursor + used, dtype=np.int64)
        cursor += pool_each
    names.extend(f"{prefix}::cold::f{i:06d}" for i in range(n - cursor))

    infra_used = np.arange(
        max(1, int(round(spec.infra_used_fraction * n_infra))), dtype=np.int64
    )

    # Hot (executed) code is larger than cold template instantiations: the
    # paper reports ~93% function-count reduction but only ~68% code-size
    # reduction, i.e. used functions hold ~4-5x their count share in bytes.
    hot_w = spec.hot_function_weight
    size_weights = np.ones(n, dtype=np.float64)
    size_weights[:n_infra] = max(1.0, hot_w / 3.0)
    size_weights[infra_used] = max(hot_w * 0.8, 0.5)
    for kind in kinds:
        pool_lo = int(op_used[kind][0]) if len(op_used[kind]) else 0
        size_weights[pool_lo : pool_lo + pool_each] = max(1.0, hot_w / 2.5)
        size_weights[op_used[kind]] = max(hot_w * 1.2, 0.5)
    sizes = rng.child("fsizes").heavy_tail_sizes(
        n, spec.text_bytes, alpha=1.25, min_size=16, weights=size_weights
    )

    layout = LibraryLayout(
        soname=spec.soname,
        n_functions=n,
        archs=tuple(archs),
        infra_used=infra_used,
        op_used=op_used,
    )

    # ---- GPU cubins -----------------------------------------------------------
    if spec.gpu_mb > 0 and spec.n_cubins > 0:
        kind_names = [k.value for k in spec.op_kinds] or [OpKind.ELEMENTWISE.value]
        n_cub = max(
            len(kind_names) + 1 + CORE_CUBIN_COUNT,
            int(round(spec.n_cubins * scale)),
        )
        kind_weights = (
            list(spec.op_kind_weights)
            if spec.op_kind_weights
            else [1.0] * len(kind_names)
        )
        misc_count = max(1, int(round(MISC_CUBIN_SHARE * n_cub)))
        counts = _allocate_counts(
            n_cub - misc_count - CORE_CUBIN_COUNT, kind_weights
        )

        arch_w = np.array([ARCH_BYTE_WEIGHTS.get(a, 1.0) for a in archs])
        arch_bytes = {
            a: int(spec.gpu_bytes * w / arch_w.sum()) for a, w in zip(archs, arch_w)
        }

        kind_byte_weights = np.asarray(kind_weights, dtype=np.float64)
        kind_byte_share = (
            kind_byte_weights
            / kind_byte_weights.sum()
            * (1.0 - MISC_BYTE_SHARE - CORE_BYTE_SHARE)
        )

        plans: list[CubinPlan] = []
        by_kind: dict[str, list[CubinPlan]] = {}
        # The core cubins: treated as a kind with all variants "hot" (the
        # runtime resolves them on first use of the library).
        kind_specs = [(CORE_KIND, CORE_CUBIN_COUNT, CORE_BYTE_SHARE)]
        kind_specs.extend(zip(kind_names, counts, kind_byte_share))
        for kind, c_k, share in kind_specs:
            hot = c_k if kind == CORE_KIND else min(MAX_HOT_VARIANTS, c_k)
            krng = rng.child("cubins", kind)
            # Per-arch byte budgets for this kind, split hot/cold.
            splits: dict[int, np.ndarray] = {}
            for a in archs:
                kind_bytes = int(arch_bytes[a] * share)
                cold_n = c_k - hot
                hot_bytes = (
                    int(kind_bytes * spec.hot_byte_share) if cold_n > 0
                    else kind_bytes
                )
                cold_bytes = kind_bytes - hot_bytes
                hot_sizes = krng.child("hot", a).heavy_tail_sizes(
                    hot, max(hot_bytes, hot * 256), alpha=1.4, min_size=256
                )
                if cold_n > 0:
                    cold_sizes = krng.child("cold", a).heavy_tail_sizes(
                        cold_n, max(cold_bytes, cold_n * 128), alpha=1.1,
                        min_size=128,
                    )
                else:
                    cold_sizes = np.zeros(0, dtype=np.int64)
                splits[a] = np.concatenate([hot_sizes, cold_sizes])
            kind_plans: list[CubinPlan] = []
            for v in range(c_k):
                vrng = RngStream("cubin", build_id, spec.soname, kind, v)
                n_kernels = int(vrng.lognormal_int(3.1, 0.7, low=6))
                n_kernels = min(n_kernels, 120)
                if kind == CORE_KIND:
                    # Core cubins: huge template families (cast/fill/copy per
                    # dtype) reachable from a handful of dispatch entries, so
                    # they add few names to the *used kernel* sets - keeping
                    # cross-workload kernel Jaccard low (paper Table 4).
                    n_kernels = max(n_kernels, 24)
                    n_entry = max(2, n_kernels // 12)
                else:
                    n_entry = max(1, int(round(0.6 * n_kernels)))
                knames = tuple(
                    f"{prefix}::{kind}::v{v}::k{j}" for j in range(n_kernels)
                )
                # Every non-entry kernel is launched by some entry kernel so
                # the whole cubin is one closed call graph (paper §3.2).
                edges = tuple(
                    (int(vrng.integers(0, n_entry)), j)
                    for j in range(n_entry, n_kernels)
                )
                plan = CubinPlan(
                    kind=kind,
                    variant=v,
                    names=knames,
                    entry_count=n_entry,
                    edges=edges,
                    code_bytes_by_arch={
                        a: int(splits[a][v]) for a in archs
                    },
                )
                kind_plans.append(plan)
                plans.append(plan)
            by_kind[kind] = kind_plans

        # Misc (dead) cubins: numerous, small, never selected at runtime.
        misc_bytes = {
            a: int(arch_bytes[a] * MISC_BYTE_SHARE) for a in archs
        }
        msizes = {
            a: rng.child("misc", a).heavy_tail_sizes(
                misc_count, max(misc_bytes[a], misc_count * 128), alpha=1.1,
                min_size=128,
            )
            for a in archs
        }
        misc_plans: list[CubinPlan] = []
        for v in range(misc_count):
            vrng = RngStream("cubin", build_id, spec.soname, "misc", v)
            n_kernels = min(int(vrng.lognormal_int(2.2, 0.6, low=2)), 60)
            n_entry = max(1, int(round(0.6 * n_kernels)))
            knames = tuple(
                f"{prefix}::misc::v{v}::k{j}" for j in range(n_kernels)
            )
            edges = tuple(
                (int(vrng.integers(0, n_entry)), j)
                for j in range(n_entry, n_kernels)
            )
            misc_plans.append(
                CubinPlan(
                    kind="misc",
                    variant=v,
                    names=knames,
                    entry_count=n_entry,
                    edges=edges,
                    code_bytes_by_arch={a: int(msizes[a][v]) for a in archs},
                )
            )
        by_kind["misc"] = misc_plans
        plans.extend(misc_plans)

        layout.cubin_plans = plans
        layout.plans_by_kind = by_kind

    return layout, sizes, names


def generate_library(
    spec: LibrarySpec,
    build_id: str,
    scale: float = 1.0,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> SharedLibrary:
    """Generate a byte-accurate ELF shared library from its spec."""
    layout, fsizes, fnames = plan_layout(spec, build_id, scale, archs)

    offsets = np.concatenate(([0], np.cumsum(fsizes[:-1]))) if len(fsizes) else (
        np.zeros(0, dtype=np.int64)
    )
    symtab = SymbolTable.for_functions(fnames, offsets, fsizes, section_index=1)

    builder = ElfBuilder(spec.soname)
    builder.add_text(int(fsizes.sum()))

    fatbin_logical = 0
    if layout.cubin_plans:
        fb = FatbinBuilder()
        for arch in archs:
            region = fb.add_region()
            for plan in layout.cubin_plans:
                code_bytes = plan.code_bytes_by_arch[arch]
                k = len(plan.names)
                crng = RngStream("kcode", build_id, spec.soname, plan.kind,
                                 plan.variant, arch)
                code_sizes = crng.heavy_tail_sizes(
                    k, max(code_bytes, k * 32), alpha=1.3, min_size=32
                )
                entry_mask = np.zeros(k, dtype=bool)
                entry_mask[: plan.entry_count] = True
                cubin = Cubin.build(
                    names=list(plan.names),
                    code_sizes=code_sizes,
                    entry_mask=entry_mask,
                    launch_edges=list(plan.edges),
                )
                region.add_element(cubin, sm_arch=arch)
        payload = fb.build()
        fatbin_logical = payload.logical_size
        builder.add_fatbin(payload)

    # Pad the file to the spec's total size with a rodata section standing in
    # for string tables / weights / debug info ("Others" in paper Fig. 1).
    structural_estimate = (
        len(symtab) * (EC.SYM_SIZE + 40) + 4096  # symtab + strtab + headers
    )
    other = spec.file_bytes - int(fsizes.sum()) - fatbin_logical - structural_estimate
    if other > 0:
        builder.add_section(
            EC.SEC_RODATA, flags=EC.SHF_ALLOC, logical_size=other, addralign=32
        )

    builder.set_function_symbols(symtab)
    image = builder.build()
    lib = parse_shared_library(image, spec.soname, proprietary=spec.proprietary)
    lib.tags["layout"] = layout
    lib.tags["build_id"] = build_id
    lib.tags["scale"] = scale
    return lib


# -- module-level generation cache ------------------------------------------------

_LIBRARY_CACHE: dict[tuple, SharedLibrary] = {}


def generated_library(
    spec: LibrarySpec,
    build_id: str,
    scale: float = 1.0,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> SharedLibrary:
    """Cached generation; the cache key is the full generation identity."""
    key = (build_id, spec.soname, scale, tuple(archs), stable_seed(spec))
    lib = _LIBRARY_CACHE.get(key)
    if lib is None:
        lib = generate_library(spec, build_id, scale, archs)
        _LIBRARY_CACHE[key] = lib
    return lib


def clear_library_cache() -> None:
    _LIBRARY_CACHE.clear()

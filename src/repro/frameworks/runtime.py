"""Framework runtime: executes model ops against generated libraries.

This is the simulated equivalent of "PyTorch running a training step": ops
are routed to the libraries that implement them, a kernel *variant* is
selected by hashing the op's shape signature (the analogue of cuDNN/cuBLAS
heuristic selection), entry kernels are resolved through
``cuModuleGetFunction`` exactly once per name, launches are issued through
the driver, and dispatcher CPU functions are touched through the loader.

Correctness property used by verification: the runtime never consults
"used" bookkeeping when executing - it resolves kernels/functions through
the same driver/loader paths a real framework would, so a library debloated
too aggressively fails here with :class:`MissingKernelError` /
:class:`MissingFunctionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.arch import GpuDevice
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.driver import CudaDriver, LoadingMode
from repro.cuda.module import KernelHandle, LoadedModule
from repro.elf.image import SharedLibrary
from repro.errors import ConfigurationError
from repro.frameworks.genlib import LibraryLayout
from repro.frameworks.ops import (
    BATCH_SENSITIVE_KINDS,
    OpInstance,
    OpKind,
    Phase,
    batch_bucket,
)
from repro.frameworks.spec import Framework
from repro.loader.process import ProcessImage
from repro.utils.rng import stable_seed
from repro.utils.units import MB


@dataclass
class ResolvedOp:
    """Cached kernel resolution for one (op, phase, batch bucket)."""

    soname: str
    kernel_names: tuple[str, ...]
    #: (driver index, handle) pairs; rank 0 carries the compute duration.
    handles: list[tuple[int, KernelHandle]]


@dataclass
class FrameworkRuntime:
    """One process running one framework on one or more GPUs."""

    framework: Framework
    devices: tuple[GpuDevice, ...]
    loading_mode: LoadingMode = LoadingMode.EAGER
    costs: CostModel = DEFAULT_COSTS

    clock: VirtualClock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("runtime needs at least one device")
        self.process = ProcessImage(
            clock=self.clock, costs=self.costs, loading_mode=self.loading_mode
        )
        self.drivers = [
            CudaDriver(
                device=dev,
                clock=self.clock,
                host_memory=self.process.host_memory,
                costs=self.costs,
                loading_mode=self.loading_mode,
            )
            for dev in self.devices
        ]
        self.modules: list[dict[str, LoadedModule]] = [
            {} for _ in self.drivers
        ]
        self.used_kernels: dict[str, set[str]] = {}
        self._op_cache: dict[tuple, ResolvedOp] = {}
        self._cpu_done: set[tuple[str, str]] = set()
        self._core_done: set[str] = set()
        self._pool_used: dict[int, int] = {}
        self._booted = False

    @property
    def world_size(self) -> int:
        return len(self.devices)

    # -- boot -------------------------------------------------------------------

    def boot(
        self,
        features: frozenset[str],
        overrides: dict[str, SharedLibrary] | None = None,
    ) -> None:
        """Import the framework, load libraries, init CUDA, apply policies.

        ``overrides`` substitutes debloated libraries by soname - the
        experiment flow of paper §4.4 (replace the top bloat contributors
        with their debloated versions and re-run).
        """
        if self._booted:
            raise ConfigurationError("runtime already booted")
        spec = self.framework.spec
        self.clock.advance(spec.import_time_s)
        self.process.host_memory.allocate(
            "framework_python", int(spec.memory.python_overhead_mb * MB)
        )

        libs = self.framework.libraries_for(features)
        if overrides:
            libs = [overrides.get(lib.soname, lib) for lib in libs]
        for lib in libs:
            self.process.load_library(lib)

        for driver, modules in zip(self.drivers, self.modules):
            driver.init()
            for lib in libs:
                if lib.has_gpu_code:
                    modules[lib.soname] = driver.module_load(lib)

        # Startup touches every library's infrastructure pool (imports,
        # registrations, allocator setup).
        for lib in libs:
            layout = self._layout(lib)
            if layout is not None and len(layout.infra_used):
                self.process.call_functions(lib.soname, layout.infra_used)

        # TensorFlow-style device pool preallocation.
        if spec.memory.kind == "pool_fraction":
            for driver in self.drivers:
                target = int(spec.memory.pool_fraction * driver.device.memory_bytes)
                gap = target - driver.device_memory.current
                if gap > 0:
                    driver.device_alloc("framework_pool", gap)
        self._booted = True

    # -- tensor memory (policy-aware) ------------------------------------------------

    def alloc_tensor(self, rank: int, category: str, nbytes: int) -> None:
        """Allocate tensor memory under the framework's memory policy.

        Pool-based frameworks (TensorFlow) serve tensors from the
        preallocated pool, so the device meter does not grow; on-demand
        frameworks (PyTorch) allocate directly.  Pool exhaustion still
        raises, mirroring TF's OOM-inside-pool behaviour.
        """
        driver = self.drivers[rank]
        spec = self.framework.spec
        if spec.memory.kind == "pool_fraction":
            pool = int(spec.memory.pool_fraction * driver.device.memory_bytes)
            used = self._pool_used.get(rank, 0) + nbytes
            if used > pool:
                from repro.errors import OutOfMemoryError

                raise OutOfMemoryError(
                    f"{driver.device.name}: framework pool exhausted "
                    f"({used}/{pool} bytes)"
                )
            self._pool_used[rank] = used
            return
        driver.device_alloc(category, nbytes)

    def copy_weights(self, rank: int, nbytes: int) -> None:
        """Host->device weight transfer under the memory policy."""
        driver = self.drivers[rank]
        if self.framework.spec.memory.kind == "pool_fraction":
            driver.clock.advance(nbytes / self.costs.pcie_bandwidth)
            driver.counters.h2d_bytes += nbytes
            self.alloc_tensor(rank, "weights", nbytes)
            return
        driver.memcpy_h2d("weights", nbytes)

    def fill_device_pool(self) -> None:
        """vLLM-style KV-cache preallocation: fill to the utilization target.

        Called after weights are resident.  Because the pool is sized to
        *whatever is left* below the target, debloating (which frees GPU code
        bytes) simply yields a bigger pool - the reason the paper measures
        ~0% GPU-memory reduction for vLLM (Tables 5/7).
        """
        spec = self.framework.spec
        if spec.memory.kind != "utilization_target":
            return
        for driver in self.drivers:
            target = int(spec.memory.pool_fraction * driver.device.memory_bytes)
            gap = target - driver.device_memory.current
            if gap > 0:
                driver.device_alloc("kv_cache_pool", gap)

    # -- op execution ----------------------------------------------------------------

    @staticmethod
    def _layout(lib: SharedLibrary) -> LibraryLayout | None:
        return lib.tags.get("layout")

    def _loaded_lib(self, soname: str) -> SharedLibrary:
        return self.process.require(soname).lib

    def _route(self, kind: OpKind, phase: Phase, shape_sig: str) -> str:
        """Pick the library serving this op (cuDNN heuristic analogue)."""
        routing = self.framework.spec.kernel_routing.get(kind)
        if routing is None:
            raise ConfigurationError(
                f"{self.framework.name}: no kernel routing for {kind}"
            )
        phase_key = "bwd" if phase is Phase.BACKWARD else "fwd"
        candidates = routing.get(phase_key) or routing.get("any") or ()
        loaded = [s for s in candidates if s in self.process.libraries]
        # Fall back across phases (e.g. optimizer phase uses "any" routes).
        if not loaded:
            for key in ("any", "fwd", "bwd"):
                loaded = [
                    s for s in routing.get(key, ()) if s in self.process.libraries
                ]
                if loaded:
                    break
        if not loaded:
            raise ConfigurationError(
                f"{self.framework.name}: no loaded library serves {kind}"
            )
        pick = stable_seed(self.framework.name, kind.value, shape_sig) % len(loaded)
        return loaded[pick]

    def _select_variant(
        self, layout: LibraryLayout, kind: OpKind, phase: Phase,
        shape_sig: str, batch_size: int, rank: int,
    ) -> int:
        """Stable kernel-variant selection.

        Single-GPU runs select among the few *hot* variants (general-purpose
        kernels); distributed ranks hash over the full variant space with
        their rank mixed in, modelling the extra shape/communication variants
        distributed inference exercises (paper §4.5: element reduction drops
        under 8-GPU inference because more kernels are used).
        """
        hot = layout.hot_variant_count(kind)
        total = layout.variant_count(kind)
        if hot == 0:
            return -1
        bucket = batch_bucket(batch_size) if kind in BATCH_SENSITIVE_KINDS else -1
        if self.world_size > 1:
            return stable_seed(
                self.framework.name, kind.value, shape_sig, phase.value,
                bucket, "rank", rank,
            ) % max(total, 1)
        return stable_seed(
            self.framework.name, kind.value, shape_sig, phase.value, bucket
        ) % hot

    def _resolve_op(
        self, op: OpInstance, phase: Phase, batch_size: int
    ) -> ResolvedOp:
        soname = self._route(op.kind, phase, op.shape_sig)
        lib = self._loaded_lib(soname)
        layout = self._layout(lib)
        if layout is None:
            raise ConfigurationError(f"{soname}: missing generation layout")

        kper = self.framework.spec.kernels_per_op
        bucket = (
            batch_bucket(batch_size) if op.kind in BATCH_SENSITIVE_KINDS else -1
        )
        names: list[str] = []
        handles: list[tuple[int, KernelHandle]] = []
        for rank in range(self.world_size):
            variant = self._select_variant(
                layout, op.kind, phase, op.shape_sig, batch_size, rank
            )
            if variant < 0:
                continue
            entries = layout.entry_kernels(op.kind, variant)
            if not entries:
                continue
            start = stable_seed(op.uid, phase.value, rank, bucket) % len(entries)
            chosen = [
                entries[(start + j) % len(entries)]
                for j in range(min(kper, len(entries)))
            ]
            module = self.modules[rank].get(soname)
            if module is None:
                continue
            for name in sorted(set(chosen)):
                handle = self.drivers[rank].module_get_function(module, name)
                handles.append((rank, handle))
                if rank == 0 or self.world_size > 1:
                    names.append(name)
        self.used_kernels.setdefault(soname, set()).update(names)
        self._ensure_core(soname, layout)
        return ResolvedOp(
            soname=soname, kernel_names=tuple(sorted(set(names))), handles=handles
        )

    def _ensure_core(self, soname: str, layout: LibraryLayout) -> None:
        """Resolve the library's universal kernel families on first use.

        Any workload that launches into a library also uses its core
        fill/copy/cast/reduce kernels (tensor initialization, dtype casts,
        contiguous-copy fallbacks) - resolved once per library.
        """
        if soname in self._core_done:
            return
        self._core_done.add(soname)
        for plan in layout.core_plans():
            entries = plan.entry_names()
            for rank in range(self.world_size):
                module = self.modules[rank].get(soname)
                if module is None:
                    continue
                for name in entries:
                    handle = self.drivers[rank].module_get_function(module, name)
                    self.drivers[rank].launch_kernel(handle, count=1)
            self.used_kernels.setdefault(soname, set()).update(entries)

    def _exercise_cpu(self, kind: OpKind, kernel_soname: str,
                      cpu_seconds: float) -> None:
        spec = self.framework.spec
        targets = list(spec.cpu_dispatch_libs)
        targets.append(kernel_soname)
        # cuDNN sublibraries dispatch through the cuDNN frontend.
        if kernel_soname.startswith("libcudnn_") and "libcudnn.so.8" in self.process.libraries:
            targets.append("libcudnn.so.8")
        charged = False
        for soname in targets:
            if soname not in self.process.libraries:
                continue
            key = (soname, kind.value)
            indices: np.ndarray
            if key in self._cpu_done:
                indices = np.zeros(0, dtype=np.int64)
            else:
                self._cpu_done.add(key)
                layout = self._layout(self._loaded_lib(soname))
                if layout is None:
                    indices = np.zeros(0, dtype=np.int64)
                else:
                    indices = layout.op_used.get(kind.value,
                                                 np.zeros(0, dtype=np.int64))
            seconds = cpu_seconds if not charged else 0.0
            charged = True
            if indices.size or seconds:
                self.process.call_functions(soname, indices, cpu_seconds=seconds)
        if not charged and cpu_seconds:
            self.clock.advance(cpu_seconds)

    def run_op(
        self,
        op: OpInstance,
        phase: Phase,
        batch_size: int,
        count: int = 1,
        gpu_seconds: float = 0.0,
        cpu_seconds: float = 0.0,
    ) -> ResolvedOp:
        """Execute one op ``count`` times (resolution cached per shape/phase).

        ``gpu_seconds``/``cpu_seconds`` are totals for all ``count``
        executions.
        """
        if not self._booted:
            raise ConfigurationError("runtime not booted")
        bucket = (
            batch_bucket(batch_size) if op.kind in BATCH_SENSITIVE_KINDS else -1
        )
        key = (op.uid, phase.value, bucket)
        resolved = self._op_cache.get(key)
        if resolved is None:
            resolved = self._resolve_op(op, phase, batch_size)
            self._op_cache[key] = resolved

        rank0 = [h for r, h in resolved.handles if r == 0]
        per_kernel_total = gpu_seconds / max(1, len(rank0))
        for rank, handle in resolved.handles:
            self.drivers[rank].launch_kernel(
                handle,
                count=count,
                duration=per_kernel_total if rank == 0 else 0.0,
            )
        self._exercise_cpu(op.kind, resolved.soname, cpu_seconds)
        return resolved

    # -- metrics helpers -----------------------------------------------------------------

    def peak_host_bytes(self) -> int:
        return self.process.host_memory.peak

    def peak_device_bytes(self) -> int:
        return max(d.device_memory.peak for d in self.drivers)

    def used_function_indices(self) -> dict[str, np.ndarray]:
        return self.process.used_function_indices()

"""Seed pure-Python kernel locator, kept verbatim as the equivalence oracle.

This is the per-element decision loop the vectorized
:class:`~repro.core.locate.KernelLocator` replaced: drive the ``cuobjdump``
extraction, intersect Python sets per element, and append
:class:`~repro.core.locate.ElementDecision` objects one by one.  It mirrors
``repro.utils._intervals_py`` in spirit - never imported by production
code, only by the fuzz tests and benchmarks that assert the vectorized
passes produce byte-identical decisions, ranges, and clock charges.
"""

from __future__ import annotations

from repro.core.locate import (
    ElementDecision,
    LocateResult,
    RemovalReason,
    _ranges_from_pairs,
)
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.elf.image import SharedLibrary
from repro.errors import LocationError
from repro.fatbin.cuobjdump import ExtractedCubin, extract_cubins
from repro.utils.intervals import RangeSet


def locate_py(
    lib: SharedLibrary,
    used_kernels: frozenset[str],
    device_arch: int,
    clock: VirtualClock | None = None,
    cubins: list[ExtractedCubin] | None = None,
    costs: CostModel = DEFAULT_COSTS,
) -> LocateResult:
    """The seed ``KernelLocator.locate`` loop, unchanged."""
    image = lib.fatbin
    if image is None:
        return LocateResult(
            soname=lib.soname,
            device_arch=device_arch,
            decisions=[],
            retain_ranges=RangeSet.empty(),
            remove_ranges=RangeSet.empty(),
        )

    if cubins is None:
        cubins = extract_cubins(lib)
    if clock is not None:
        clock.advance(
            costs.locate_fixed_per_lib
            + costs.locate_per_element * len(cubins)
            + costs.locate_per_used_kernel * len(used_kernels)
        )

    decisions: list[ElementDecision] = []
    retain: list[tuple[int, int]] = []
    remove: list[tuple[int, int]] = []
    for extracted in cubins:
        element = image.element_by_index(extracted.index)
        if element.sm_arch != extracted.sm_arch:
            raise LocationError(
                f"{lib.soname}: cuobjdump index {extracted.index} does not "
                f"match element order"
            )
        rng = element.file_range
        if extracted.sm_arch != device_arch:
            decision = ElementDecision(
                index=extracted.index,
                sm_arch=extracted.sm_arch,
                size=len(rng),
                kernel_count=len(extracted.kernel_names),
                retained=False,
                reason=RemovalReason.ARCH_MISMATCH,
            )
        else:
            # Entry kernels only: GPU-launching kernels ride along via
            # whole-element retention.
            hits = tuple(
                sorted(set(extracted.entry_kernel_names) & used_kernels)
            )
            if hits:
                decision = ElementDecision(
                    index=extracted.index,
                    sm_arch=extracted.sm_arch,
                    size=len(rng),
                    kernel_count=len(extracted.kernel_names),
                    retained=True,
                    reason=None,
                    used_entry_kernels=hits,
                )
            else:
                decision = ElementDecision(
                    index=extracted.index,
                    sm_arch=extracted.sm_arch,
                    size=len(rng),
                    kernel_count=len(extracted.kernel_names),
                    retained=False,
                    reason=RemovalReason.NO_USED_KERNELS,
                )
        decisions.append(decision)
        (retain if decision.retained else remove).append(
            (rng.start, rng.stop)
        )

    return LocateResult(
        soname=lib.soname,
        device_arch=device_arch,
        decisions=decisions,
        retain_ranges=_ranges_from_pairs(retain),
        remove_ranges=_ranges_from_pairs(remove),
    )


def locate_delta_py(
    lib: SharedLibrary,
    previous: LocateResult,
    added_kernels: frozenset[str],
    clock: VirtualClock | None = None,
    cubins: list[ExtractedCubin] | None = None,
    costs: CostModel = DEFAULT_COSTS,
) -> LocateResult:
    """The seed ``KernelLocator.locate_delta`` loop, unchanged."""
    image = lib.fatbin
    if image is None:
        return previous
    if cubins is None:
        cubins = extract_cubins(lib)

    if len(cubins) != len(previous.decisions):
        raise LocationError(
            f"{lib.soname}: {len(cubins)} cubins vs "
            f"{len(previous.decisions)} previous decisions - stale "
            f"extraction cache"
        )
    decisions: list[ElementDecision] = []
    retain: list[tuple[int, int]] = []
    remove: list[tuple[int, int]] = []
    flipped = 0
    for extracted, prev in zip(cubins, previous.decisions):
        if extracted.index != prev.index:
            raise LocationError(
                f"{lib.soname}: cached cubins do not match previous "
                f"locate result"
            )
        decision = prev
        if prev.sm_arch == previous.device_arch:
            new_hits = set(extracted.entry_kernel_names) & added_kernels
            if new_hits:
                decision = ElementDecision(
                    index=prev.index,
                    sm_arch=prev.sm_arch,
                    size=prev.size,
                    kernel_count=prev.kernel_count,
                    retained=True,
                    reason=None,
                    used_entry_kernels=tuple(
                        sorted(set(prev.used_entry_kernels) | new_hits)
                    ),
                )
                if not prev.retained:
                    flipped += 1
        decisions.append(decision)
        rng = image.element_by_index(decision.index).file_range
        (retain if decision.retained else remove).append(
            (rng.start, rng.stop)
        )

    if clock is not None:
        clock.advance(
            costs.locate_per_used_kernel * len(added_kernels)
            + costs.locate_per_element * flipped
        )

    return LocateResult(
        soname=lib.soname,
        device_arch=previous.device_arch,
        decisions=decisions,
        retain_ranges=_ranges_from_pairs(retain),
        remove_ranges=_ranges_from_pairs(remove),
    )

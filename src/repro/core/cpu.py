"""CPU-side detection and location (Negativa's original phases).

The paper reuses Negativa (Zhang & Ali-Eldin, 2025) for CPU code: profile
the workload to find executed functions, locate them through the symbol
table, and keep only those.  Here the detector wraps the loader's
function-profiling hook, and the locator turns used symbol indices into
``.text`` file ranges (under the PIC layout, symbol value == file offset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.elf.image import SharedLibrary
from repro.loader.profiler import FunctionProfiler
from repro.utils.intervals import RangeSet


@dataclass
class FunctionDetector:
    """Records CPU functions executed by the profiled workload.

    A thin, named wrapper around :class:`FunctionProfiler`: attach
    ``detector.profiler`` to the :class:`~repro.loader.process.ProcessImage`
    before the detection run; the instrumentation slowdown
    (``CostModel.cpu_profiler_slowdown``) is charged by the loader while
    attached.
    """

    profiler: FunctionProfiler = field(default_factory=FunctionProfiler)

    def used_functions(self) -> dict[str, np.ndarray]:
        return self.profiler.used_functions()

    def used_count(self) -> int:
        return self.profiler.used_count()


@dataclass(frozen=True)
class FunctionLocateResult:
    """Used-function geometry for one library."""

    soname: str
    used_indices: np.ndarray
    retain_ranges: RangeSet
    remove_ranges: RangeSet
    used_bytes: int
    total_bytes: int
    total_functions: int

    @property
    def used_functions(self) -> int:
        return int(self.used_indices.size)

    @property
    def removed_functions(self) -> int:
        return self.total_functions - self.used_functions

    @property
    def removed_bytes(self) -> int:
        return self.total_bytes - self.used_bytes


@dataclass
class FunctionLocator:
    """Maps used function indices to retain/remove ranges in ``.text``."""

    costs: CostModel = DEFAULT_COSTS

    def locate(
        self,
        lib: SharedLibrary,
        used_indices: np.ndarray,
        clock: VirtualClock | None = None,
    ) -> FunctionLocateResult:
        values, sizes = lib.function_file_ranges()
        n = len(values)
        if clock is not None:
            clock.advance(self.costs.locate_per_function * n)

        used = np.zeros(n, dtype=bool)
        used_indices = np.asarray(used_indices, dtype=np.int64)
        if used_indices.size:
            if used_indices.min() < 0 or used_indices.max() >= n:
                from repro.errors import LocationError

                raise LocationError(
                    f"{lib.soname}: used function index out of range"
                )
            used[used_indices] = True

        text = lib.text
        if text is None or n == 0:
            return FunctionLocateResult(
                soname=lib.soname,
                used_indices=used_indices,
                retain_ranges=RangeSet.empty(),
                remove_ranges=RangeSet.empty(),
                used_bytes=0,
                total_bytes=0,
                total_functions=n,
            )

        retain = _runs_to_ranges(values, sizes, used)
        remove = _runs_to_ranges(values, sizes, ~used)
        return FunctionLocateResult(
            soname=lib.soname,
            used_indices=used_indices,
            retain_ranges=retain,
            remove_ranges=remove,
            used_bytes=int(sizes[used].sum()),
            total_bytes=int(sizes.sum()),
            total_functions=n,
        )


def _runs_to_ranges(values: np.ndarray, sizes: np.ndarray,
                    mask: np.ndarray) -> RangeSet:
    """Merge selected (offset, size) entries into a RangeSet, vectorized.

    Functions are laid out in ascending offset order, so runs of consecutive
    selected functions collapse into single ranges; a 600k-symbol library
    yields thousands of ranges, not hundreds of thousands.
    """
    if not mask.any():
        return RangeSet.empty()
    starts = values[mask]
    ends = starts + sizes[mask]
    # Boundaries where the next start does not continue the previous end.
    breaks = np.flatnonzero(starts[1:] != ends[:-1])
    run_starts = np.concatenate(([0], breaks + 1))
    run_ends = np.concatenate((breaks, [len(starts) - 1]))
    return RangeSet.from_arrays(starts[run_starts], ends[run_ends])

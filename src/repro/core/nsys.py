"""NSys-style tracing baseline (paper §3.1 / §4.6).

Nsight Systems records *every* kernel launch (plus module loads and
memcpys) to build a performance timeline; as a kernel-detection mechanism
it is strictly more expensive than the detector because its overhead scales
with launch count.  The paper measures +126% on PyTorch/MobileNetV2
training versus the detector's +41%; `benchmarks/bench_sec46.py`
regenerates that comparison, and the ablation bench shows NSys overhead
growing with epochs while the detector's stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.cupti import CallbackInfo, CallbackSite


@dataclass
class NsysTracer:
    """Full-tracing CUPTI subscriber (``nsys profile --trace=cuda``)."""

    costs: CostModel = DEFAULT_COSTS
    sites: frozenset[CallbackSite] = frozenset(
        {
            CallbackSite.CU_LAUNCH_KERNEL,
            CallbackSite.CU_MODULE_GET_FUNCTION,
            CallbackSite.CU_MODULE_LOAD,
            CallbackSite.CU_MEMCPY,
        }
    )
    launch_records: int = 0
    misc_records: int = 0
    #: (library, kernel) -> launch count: the timeline rows.
    timeline: dict[tuple[str, str], int] = field(default_factory=dict)
    #: A passive tracer observes (counts records) without charging the
    #: virtual clock - neither attach cost nor per-record cost.  The fused
    #: instrumented run attaches one so ``Debloater.debloat`` can attribute
    #: what a *standalone* NSys-traced run would have cost
    #: (:attr:`~repro.core.report.DebloatTiming.nsys_traced_run_s`) without
    #: executing the workload again.
    passive: bool = False

    def cost_per_event(self, site: CallbackSite) -> float:
        if self.passive:
            return 0.0
        if site is CallbackSite.CU_LAUNCH_KERNEL:
            return self.costs.nsys_launch_record
        return self.costs.nsys_misc_record

    def traced_run_overhead_s(self, n_devices: int) -> float:
        """What this trace volume costs a *charged* run (closed form).

        One CUPTI attach per device driver plus the per-record costs for
        every launch/misc record observed.  For a passive tracer riding a
        fused run this is exactly the overhead a standalone
        ``nsys --trace=cuda`` run of the same workload pays, because record
        counts are deterministic functions of the executed ops.
        """
        return (
            n_devices * self.costs.cupti_attach
            + self.costs.nsys_launch_record * self.launch_records
            + self.costs.nsys_misc_record * self.misc_records
        )

    def on_event(self, info: CallbackInfo) -> None:
        if info.site is CallbackSite.CU_LAUNCH_KERNEL:
            self.launch_records += info.count
            if info.library and info.kernel:
                key = (info.library, info.kernel)
                self.timeline[key] = self.timeline.get(key, 0) + info.count
        else:
            self.misc_records += info.count

    # -- detection-equivalent view ---------------------------------------------------

    def used_kernels(self) -> dict[str, frozenset[str]]:
        """Kernels seen launching - NSys *can* detect, just expensively."""
        out: dict[str, set[str]] = {}
        for (library, kernel) in self.timeline:
            out.setdefault(library, set()).add(kernel)
        return {k: frozenset(v) for k, v in out.items()}

    def top_kernels(self, n: int = 10) -> list[tuple[str, str, int]]:
        rows = sorted(self.timeline.items(), key=lambda kv: -kv[1])[:n]
        return [(lib, kernel, count) for (lib, kernel), count in rows]

"""Negativa-ML: the paper's contribution.

The pipeline follows Negativa's three phases (paper §2.3/§3), extended to
GPU code:

1. **Detection** - :class:`~repro.core.detect.KernelDetector` hooks
   ``cuModuleGetFunction`` through CUPTI and records used kernel names once
   per kernel (§3.1); :class:`~repro.core.cpu.FunctionDetector` profiles used
   CPU functions (Negativa's original phase).
2. **Location** - :class:`~repro.core.locate.KernelLocator` maps used kernels
   to fatbin elements via ``cuobjdump``-style extraction and decides, per
   element, retain / remove-Reason-I (architecture mismatch) /
   remove-Reason-II (no used kernels) (§3.2);
   :class:`~repro.core.cpu.FunctionLocator` maps used functions to ``.text``
   file ranges.
3. **Compaction** - :class:`~repro.core.compact.Compactor` zeroes removed
   ranges while keeping the library structurally loadable.

:class:`~repro.core.debloat.Debloater` orchestrates the full flow per
workload (detection run -> locate -> compact -> verify) and produces the
reports every experiment consumes.
"""

from repro.core.compact import Compactor, DebloatedLibrary
from repro.core.cpu import FunctionDetector, FunctionLocator
from repro.core.debloat import Debloater, DebloatOptions
from repro.core.detect import KernelDetector
from repro.core.locate import ElementDecision, KernelLocator, LocateResult, RemovalReason
from repro.core.nsys import NsysTracer
from repro.core.report import LibraryReduction, WorkloadDebloatReport
from repro.core.verify import VerificationResult, verify_debloat

__all__ = [
    "Compactor",
    "DebloatOptions",
    "DebloatedLibrary",
    "Debloater",
    "ElementDecision",
    "FunctionDetector",
    "FunctionLocator",
    "KernelDetector",
    "KernelLocator",
    "LibraryReduction",
    "LocateResult",
    "NsysTracer",
    "RemovalReason",
    "VerificationResult",
    "WorkloadDebloatReport",
    "verify_debloat",
]

"""End-to-end Negativa-ML orchestration (paper Fig. 2).

``Debloater.debloat(workload)`` runs the full pipeline:

1. a clean **baseline run** (original runtime metrics for Tables 5/7);
2. one **fused instrumented run** with the CUPTI kernel-detection hook
   (§3.1) *and* the CPU function profiler (Negativa's CPU detection phase)
   attached together - the two tools observe disjoint callback paths, so a
   single instrumented execution yields both usage sets and saves one full
   workload run per debloat.  The per-tool overheads are additive on the
   deterministic virtual clock, so the standalone detection/profiling run
   times the paper's Table 8 reports are attributed exactly from the fused
   run (see :class:`~repro.core.report.DebloatTiming`);
3. per library: **kernel location** (element decisions), **CPU function
   location**, and **compaction** - each library charged to its own clock
   (explicit locate/compact marks), summed in library order, and optionally
   fanned out over a thread pool (``DebloatOptions.locate_workers``) since
   libraries are independent;
4. **verification**: re-run with *all* debloated libraries substituted;
5. optional **runtime comparison**: re-run with the top-N bloat
   contributors replaced (the paper replaces the top 8) for Table 5.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.core.compact import Compactor, DebloatedLibrary
from repro.core.cpu import FunctionLocator
from repro.core.detect import KernelDetector
from repro.core.locate import KernelLocator
from repro.core.nsys import NsysTracer
from repro.core.report import DebloatTiming, LibraryReduction, WorkloadDebloatReport
from repro.core.verify import VerificationResult, verify_debloat
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.errors import VerificationError
from repro.frameworks.spec import Framework
from repro.loader.profiler import FunctionProfiler
from repro.testing import faults
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


#: Version of the pipeline's *behavior* (locate/compact/verify semantics,
#: timing attribution, exact-kernel ablation).  Folded into every disk-cache
#: digest alongside the serialization schema and generator versions, so
#: persisted reports never survive an algorithm change that leaves both the
#: payload layout and the generated library bytes untouched.  Bump on ANY
#: change that can alter a report's numbers for identical inputs.
PIPELINE_VERSION = 1


@dataclass(frozen=True)
class DebloatOptions:
    """Pipeline configuration."""

    costs: CostModel = DEFAULT_COSTS
    #: Re-run the workload on debloated libraries and require identical output.
    verify: bool = True
    #: Fail hard if verification fails (tests use this).
    strict_verify: bool = True
    #: Re-run with the top-N bloat contributors replaced for the runtime
    #: comparison (the paper's §4.4 flow uses 8); 0 disables, None replaces
    #: all libraries.
    runtime_comparison_top_n: int | None = 8
    #: Skip CPU-side debloating (GPU-only ablation).
    debloat_cpu: bool = True
    #: Skip GPU-side debloating (CPU-only ablation - plain Negativa).
    debloat_gpu: bool = True
    #: Fan the independent per-library locate/compact loop out over this
    #: many workers (0/1 = serial).  Results and timings are deterministic
    #: regardless of worker count: each library is charged to its own clock
    #: and sums are taken in library order.
    locate_workers: int = 0
    #: How the fan-out runs: ``"thread"`` (a ThreadPoolExecutor, the
    #: GIL-bound seed behaviour) or ``"process"`` (libraries sharded across
    #: a ProcessPoolExecutor; workers regenerate the catalog framework and
    #: ship ``DebloatedLibrary``/``LocateResult`` payloads back through
    #: :mod:`repro.core.serialize`).  Byte-identical to serial either way;
    #: non-catalog framework builds silently fall back to threads (a worker
    #: process cannot regenerate them).  Default from
    #: ``REPRO_LOCATE_WORKERS_MODE``; like ``locate_workers``, this is a
    #: pure tuning knob and is normalized out of every cache identity.
    locate_workers_mode: str = field(
        default_factory=lambda: os.environ.get(
            "REPRO_LOCATE_WORKERS_MODE", "thread"
        )
    )

    def __post_init__(self) -> None:
        if self.locate_workers_mode not in ("thread", "process"):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"locate_workers_mode must be 'thread' or 'process', got "
                f"{self.locate_workers_mode!r}"
            )


@dataclass
class Debloater:
    """Negativa-ML."""

    framework: Framework
    options: DebloatOptions = field(default_factory=DebloatOptions)

    def debloat(self, spec: WorkloadSpec) -> WorkloadDebloatReport:
        if spec.framework != self.framework.name:
            raise VerificationError(
                f"workload targets {spec.framework!r}, debloater holds "
                f"{self.framework.name!r}"
            )
        costs = self.options.costs
        device_arch = spec.devices()[0].sm_arch

        # 1. Baseline run (original metrics).
        baseline = WorkloadRunner(spec, self.framework, costs).run()

        # 2. Fused instrumented run: the CUPTI kernel-detection hook and the
        # CPU function profiler attach to the same execution (exactly how
        # debloat_many composes them), saving one full workload run.  A
        # *passive* NSys tracer rides along - it counts the records a
        # standalone `nsys --trace=cuda` run would emit without charging
        # the clock - so the §4.6 tool-stack comparison is attributed from
        # this same run instead of executing the workload a third time.
        detector = KernelDetector(costs)
        profiler = FunctionProfiler()
        nsys = NsysTracer(costs, passive=True)
        instrumented_metrics = WorkloadRunner(
            spec, self.framework, costs, subscribers=(detector, nsys),
            profiler=profiler,
        ).run()
        used_functions = profiler.used_functions()

        # Attribute the fused run to the two tools.  The detector's charge
        # is exact and closed-form (one CUPTI attach per device driver plus
        # one callback per interception); the profiler's charge is whatever
        # instrumentation time remains above the baseline.
        detector_overhead_s = (
            len(spec.devices()) * costs.cupti_attach
            + costs.detector_callback * detector.interceptions
        )

        # 3. Locate + compact every library the workload loaded.
        results = self._locate_and_compact(
            spec.features, detector, used_functions, device_arch
        )
        debloated: dict[str, DebloatedLibrary] = {}
        reductions: list[LibraryReduction] = []
        locate_results = {}
        locate_elapsed = 0.0
        compact_elapsed = 0.0
        for lib, gpu_res, d, locate_s, compact_s in results:
            if gpu_res is not None:
                locate_results[lib.soname] = gpu_res
            debloated[lib.soname] = d
            reductions.append(LibraryReduction.from_debloated(lib, d))
            locate_elapsed += locate_s
            compact_elapsed += compact_s

        timing = DebloatTiming(
            kernel_detection_run_s=(
                baseline.execution_time_s + detector_overhead_s
            ),
            cpu_profiling_run_s=(
                instrumented_metrics.execution_time_s - detector_overhead_s
            ),
            locate_s=locate_elapsed,
            compact_s=compact_elapsed,
            instrumented_run_s=instrumented_metrics.execution_time_s,
            nsys_traced_run_s=(
                baseline.execution_time_s
                + nsys.traced_run_overhead_s(len(spec.devices()))
            ),
        )

        # 5. Verification with all debloated libraries.
        verification = None
        if self.options.verify:
            verification = verify_debloat(
                spec, self.framework, debloated, baseline, costs
            )
            if self.options.strict_verify and not verification.ok:
                raise VerificationError(
                    f"{spec.workload_id}: {verification.error}"
                )

        # 6. Runtime comparison with the top-N contributors replaced.
        debloated_run = None
        top_n = self.options.runtime_comparison_top_n
        if top_n != 0:
            ranked = sorted(
                reductions, key=lambda r: r.file_reduction_bytes, reverse=True
            )
            chosen = ranked if top_n is None else ranked[:top_n]
            overrides = {
                r.soname: debloated[r.soname].lib for r in chosen
            }
            debloated_run = WorkloadRunner(
                spec, self.framework, costs, overrides=overrides
            ).run()

        report = WorkloadDebloatReport(
            workload_id=spec.workload_id,
            device_arch=device_arch,
            libraries=reductions,
            locate_results=locate_results,
            timing=timing,
            baseline=baseline,
            detection=instrumented_metrics,
            debloated_run=debloated_run,
            verification=verification,
        )
        report_extras = {
            "detector_interceptions": detector.interceptions,
            "detected_kernels": detector.total_detected(),
            "profiled_functions": profiler.used_count(),
            "nsys_launch_records": nsys.launch_records,
            "nsys_misc_records": nsys.misc_records,
        }
        baseline.counters.update(report_extras)
        self.debloated_libraries = debloated
        return report

    # -- per-library locate/compact ------------------------------------------------

    def _locate_and_compact(
        self,
        features: frozenset[str],
        detector: KernelDetector,
        used_functions: dict[str, np.ndarray],
        device_arch: int,
    ) -> list[tuple]:
        """Locate and compact every library, optionally in parallel.

        Each library is charged to a private :class:`VirtualClock` with
        explicit locate/compact marks, so the work is embarrassingly
        parallel and the timing sums (taken in library order by the caller)
        are identical whether the loop runs serial, fanned out over
        threads, or sharded across processes
        (``locate_workers_mode="process"``).
        """
        libs = self.framework.libraries_for(features)
        no_functions = np.zeros(0, dtype=np.int64)
        used_kernels = {
            lib.soname: detector.used_kernels_for(lib.soname) for lib in libs
        }
        used_fn = {
            lib.soname: used_functions.get(lib.soname, no_functions)
            for lib in libs
        }
        options = self.options
        workers = options.locate_workers

        if workers and workers > 1 and len(libs) > 1:
            if options.locate_workers_mode == "process":
                sharded = _process_sharded_locate_compact(
                    self.framework,
                    libs,
                    used_kernels,
                    used_fn,
                    device_arch,
                    options,
                    workers,
                )
                if sharded is not None:
                    return sharded
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda lib: (
                            lib,
                            *_locate_compact_library(
                                lib,
                                used_kernels[lib.soname],
                                used_fn[lib.soname],
                                device_arch,
                                options,
                            ),
                        ),
                        libs,
                    )
                )
        return [
            (
                lib,
                *_locate_compact_library(
                    lib,
                    used_kernels[lib.soname],
                    used_fn[lib.soname],
                    device_arch,
                    options,
                ),
            )
            for lib in libs
        ]

    # -- multi-workload debloating (paper §5 extension) ---------------------------

    def debloat_many(
        self, specs: list[WorkloadSpec]
    ) -> "MultiWorkloadReport":
        """Debloat one library set against the *union* of several workloads.

        The paper's discussion (§5) observes that code unused by one
        workload is likely unnecessary for others; this extension makes
        that actionable: detection runs once per workload, usage sets are
        unioned, each library is located/compacted once, and the result is
        verified against *every* workload.  The report exposes the marginal
        retention growth per added workload - how quickly the "needed" set
        saturates.

        DEPRECATED: this is now a shim over the :mod:`repro.api` facade -
        an ephemeral :class:`~repro.api.engine.DebloatEngine` hosts this
        debloater's framework as one federation shard, admits every spec,
        and returns the shard's union report (byte-identical to the
        pre-engine loop over :meth:`DebloatStore.admit`, which itself is
        byte-identical to the one-shot union).  New code should hold an
        engine and call :meth:`~repro.api.engine.DebloatEngine.admit` /
        :meth:`~repro.api.engine.DebloatEngine.report` directly.  Malformed
        spec lists (empty, mixed frameworks, mixed device architectures)
        still raise :class:`~repro.errors.UsageError` before anything runs.
        """
        import warnings

        warnings.warn(
            "Debloater.debloat_many is deprecated; use "
            "repro.api.DebloatEngine.admit/report",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import AdmitRequest, DebloatEngine, EngineConfig
        from repro.serving.store import validate_union_specs

        validate_union_specs(self.framework.name, specs)
        config = EngineConfig(
            scale=self.framework.scale,
            options=self.options,
            use_cache=False,
        )
        with DebloatEngine(config) as engine:
            shard = engine.federation.ensure_shard(self.framework)
            for spec in specs:
                engine.admit(AdmitRequest(spec=spec))
            report = engine.report(self.framework.name).union_report
            self.debloated_libraries = shard.store.debloated_libraries()
        return report


# -- per-library pipeline + process sharding ----------------------------------


def _locate_compact_library(
    lib,
    used_kernels: frozenset[str],
    used_fn: np.ndarray,
    device_arch: int,
    options: DebloatOptions,
) -> tuple:
    """Locate + compact one library on a private clock.

    The unit of work every fan-out mode shares: pure in (library, usage,
    architecture, options), so serial, threaded, and process-sharded runs
    produce identical results and identical per-library clock marks.
    Returns ``(gpu_res, debloated, locate_s, compact_s)``.
    """
    costs = options.costs
    clock = VirtualClock()
    gpu_res = None
    if options.debloat_gpu:
        gpu_res = KernelLocator(costs).locate(
            lib, used_kernels, device_arch, clock=clock
        )
    cpu_res = None
    if options.debloat_cpu:
        cpu_res = FunctionLocator(costs).locate(lib, used_fn, clock=clock)
    locate_mark = clock.now
    debloated = Compactor(costs).compact(lib, cpu_res, gpu_res, clock=clock)
    return gpu_res, debloated, locate_mark, clock.now - locate_mark


def _pool_context():
    """Fork when the platform has it (workers inherit the generated
    framework cache for free); the spawn fallback regenerates from the
    catalog, which is deterministic but pays the generation cost once per
    worker."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


@dataclass(frozen=True)
class FanoutDegraded:
    """One process fan-out that fell back to thread mode.

    Recorded when a :class:`BrokenProcessPool` survives the single pool
    rebuild: the admission itself still succeeds (the caller re-runs the
    same shards on threads - the per-library work is a pure function, so
    results are identical), but the degradation is observable through
    :func:`fanout_events` and the engine's ``health()``.
    """

    framework: str
    shards: int
    reason: str


_FANOUT_EVENTS: list[FanoutDegraded] = []
_FANOUT_LOCK = threading.Lock()
_FANOUT_THREAD_FALLBACK = True


def configure_fanout(thread_fallback: bool = True) -> None:
    """Process-wide degraded-mode switch for the locate fan-out.

    ``thread_fallback=False`` makes a twice-broken process pool propagate
    its :class:`BrokenProcessPool` (the admission retry policy then
    decides) instead of silently re-running on threads; the engine facade
    sets this from ``EngineConfig.degraded_modes``.
    """
    global _FANOUT_THREAD_FALLBACK
    _FANOUT_THREAD_FALLBACK = bool(thread_fallback)


def fanout_events() -> tuple[FanoutDegraded, ...]:
    """Every recorded process-to-thread fan-out degradation, oldest first."""
    with _FANOUT_LOCK:
        return tuple(_FANOUT_EVENTS)


def clear_fanout_events() -> None:
    with _FANOUT_LOCK:
        _FANOUT_EVENTS.clear()


def _record_fanout_degraded(framework: str, shards: int, reason: str) -> None:
    with _FANOUT_LOCK:
        _FANOUT_EVENTS.append(FanoutDegraded(framework, shards, reason))


def _process_sharded_locate_compact(
    framework: Framework,
    libs: list,
    used_kernels: dict[str, frozenset[str]],
    used_fn: dict[str, np.ndarray],
    device_arch: int,
    options: DebloatOptions,
    workers: int,
) -> list[tuple] | None:
    """Shard the per-library loop across a process pool.

    Returns results in library order, or ``None`` when the framework is
    not a catalog build a worker process could regenerate (the caller
    falls back to the thread pool).  Workers ship
    ``DebloatedLibrary``/``LocateResult`` payloads back through
    :mod:`repro.core.serialize`; the parent reattaches its own original
    libraries, so the reconstruction is exactly what
    :meth:`~repro.core.compact.Compactor.compact` would have produced
    in-process.
    """
    import dataclasses

    from repro.core import serialize
    from repro.frameworks.catalog import build_key_for

    key = build_key_for(framework)
    if key is None:
        return None
    name, scale, archs = key

    shards = [libs[i::workers] for i in range(workers)]
    shards = [shard for shard in shards if shard]
    tasks = []
    for shard in shards:
        sonames = [lib.soname for lib in shard]
        tasks.append(
            serialize.value_dumps(
                {
                    "framework": name,
                    "scale": scale,
                    "archs": list(archs),
                    "device_arch": device_arch,
                    "sonames": sonames,
                    "used_kernels": {
                        s: sorted(used_kernels[s]) for s in sonames
                    },
                    "used_functions": {
                        s: np.asarray(used_fn[s], dtype=np.int64)
                        for s in sonames
                    },
                    "debloat_cpu": options.debloat_cpu,
                    "debloat_gpu": options.debloat_gpu,
                    "costs": dataclasses.asdict(options.costs),
                },
                serialize.SHARD_TASK_KIND,
            )
        )

    def run_pool() -> list[bytes]:
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_locate_compact_shard, task) for task in tasks
            ]
            blobs: list[bytes] = []
            for i, future in enumerate(futures):
                # Parent-side collection is the fault site: an injected
                # BrokenProcessPool lands exactly where a crashed worker
                # process would surface.
                faults.check(f"locate.shard.{i}")
                blobs.append(future.result())
            return blobs

    try:
        try:
            blobs = run_pool()
        except BrokenProcessPool:
            # A crashed worker poisons the whole pool; one rebuild retries
            # the full shard set (shard work is pure, so re-running is
            # safe and byte-identical).
            blobs = run_pool()
    except BrokenProcessPool as exc:
        _record_fanout_degraded(name, len(shards), str(exc))
        if not _FANOUT_THREAD_FALLBACK:
            raise
        return None

    by_soname: dict[str, dict] = {}
    for blob in blobs:
        for item in serialize.value_loads(blob, serialize.SHARD_RESULT_KIND):
            by_soname[item["soname"]] = item
    out: list[tuple] = []
    for lib in libs:
        item = by_soname[lib.soname]
        gpu_res = (
            serialize.locate_from_payload(item["gpu"])
            if item["gpu"] is not None
            else None
        )
        debloated = serialize.debloated_from_payload(item["debloated"], lib)
        out.append(
            (
                lib,
                gpu_res,
                debloated,
                float(item["locate_s"]),
                float(item["compact_s"]),
            )
        )
    return out


def _locate_compact_shard(blob: bytes) -> bytes:
    """Worker-process entry point: one shard of libraries, payload in/out."""
    from repro.core import serialize
    from repro.frameworks.catalog import get_framework

    task = serialize.value_loads(blob, serialize.SHARD_TASK_KIND)
    framework = get_framework(
        task["framework"],
        scale=float(task["scale"]),
        archs=tuple(int(a) for a in task["archs"]),
    )
    costs_kwargs = dict(task["costs"])
    costs_kwargs["extra"] = dict(costs_kwargs.get("extra") or {})
    options = DebloatOptions(
        costs=CostModel(**costs_kwargs),
        debloat_cpu=bool(task["debloat_cpu"]),
        debloat_gpu=bool(task["debloat_gpu"]),
    )
    device_arch = int(task["device_arch"])
    results = []
    for soname in task["sonames"]:
        lib = framework.libraries[soname]
        gpu_res, debloated, locate_s, compact_s = _locate_compact_library(
            lib,
            frozenset(task["used_kernels"].get(soname, ())),
            np.asarray(
                task["used_functions"].get(soname, ()), dtype=np.int64
            ),
            device_arch,
            options,
        )
        results.append(
            {
                "soname": soname,
                "gpu": (
                    serialize.locate_to_payload(gpu_res)
                    if gpu_res is not None
                    else None
                ),
                "debloated": serialize.debloated_to_payload(debloated),
                "locate_s": locate_s,
                "compact_s": compact_s,
            }
        )
    return serialize.value_dumps(results, serialize.SHARD_RESULT_KIND)


@dataclass
class MultiWorkloadReport:
    """Result of debloating against a workload set (union of usage)."""

    workload_ids: list[str]
    libraries: list[LibraryReduction]
    verifications: list[VerificationResult]
    marginal_new_kernels: list[int]

    @property
    def all_verified(self) -> bool:
        return all(v.ok for v in self.verifications)

    @property
    def total_file_size(self) -> int:
        return sum(lib.file_size for lib in self.libraries)

    @property
    def total_file_size_after(self) -> int:
        return sum(lib.file_size_after for lib in self.libraries)

    @property
    def file_reduction_pct(self) -> float:
        from repro.utils.units import pct_reduction

        return pct_reduction(self.total_file_size, self.total_file_size_after)

    def saturation_series(self) -> list[tuple[str, int]]:
        """(workload, new kernels it added) - how fast usage saturates."""
        return list(zip(self.workload_ids, self.marginal_new_kernels))

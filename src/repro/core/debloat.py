"""End-to-end Negativa-ML orchestration (paper Fig. 2).

``Debloater.debloat(workload)`` runs the full pipeline:

1. a clean **baseline run** (original runtime metrics for Tables 5/7);
2. a **kernel-detection run** with the CUPTI hook attached (§3.1);
3. a **CPU-profiling run** with the function profiler attached (Negativa's
   CPU detection phase);
4. per library: **kernel location** (element decisions), **CPU function
   location**, and **compaction** - all charged to the pipeline clock,
   which is what Table 8's end-to-end times report;
5. **verification**: re-run with *all* debloated libraries substituted;
6. optional **runtime comparison**: re-run with the top-N bloat
   contributors replaced (the paper replaces the top 8) for Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compact import Compactor, DebloatedLibrary
from repro.core.cpu import FunctionLocator
from repro.core.detect import KernelDetector
from repro.core.locate import KernelLocator
from repro.core.report import DebloatTiming, LibraryReduction, WorkloadDebloatReport
from repro.core.verify import verify_debloat
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.errors import VerificationError
from repro.frameworks.spec import Framework
from repro.loader.profiler import FunctionProfiler
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class DebloatOptions:
    """Pipeline configuration."""

    costs: CostModel = DEFAULT_COSTS
    #: Re-run the workload on debloated libraries and require identical output.
    verify: bool = True
    #: Fail hard if verification fails (tests use this).
    strict_verify: bool = True
    #: Re-run with the top-N bloat contributors replaced for the runtime
    #: comparison (the paper's §4.4 flow uses 8); 0 disables, None replaces
    #: all libraries.
    runtime_comparison_top_n: int | None = 8
    #: Skip CPU-side debloating (GPU-only ablation).
    debloat_cpu: bool = True
    #: Skip GPU-side debloating (CPU-only ablation - plain Negativa).
    debloat_gpu: bool = True


@dataclass
class Debloater:
    """Negativa-ML."""

    framework: Framework
    options: DebloatOptions = field(default_factory=DebloatOptions)

    def debloat(self, spec: WorkloadSpec) -> WorkloadDebloatReport:
        if spec.framework != self.framework.name:
            raise VerificationError(
                f"workload targets {spec.framework!r}, debloater holds "
                f"{self.framework.name!r}"
            )
        costs = self.options.costs
        device_arch = spec.devices()[0].sm_arch

        # 1. Baseline run (original metrics).
        baseline = WorkloadRunner(spec, self.framework, costs).run()

        # 2. Kernel-detection run.
        detector = KernelDetector(costs)
        detection_metrics = WorkloadRunner(
            spec, self.framework, costs, subscribers=(detector,)
        ).run()

        # 3. CPU-profiling run.
        profiler = FunctionProfiler()
        profiling_metrics = WorkloadRunner(
            spec, self.framework, costs, profiler=profiler
        ).run()
        used_functions = profiler.used_functions()

        # 4. Locate + compact every library the workload loaded.
        pipeline_clock = VirtualClock()
        kernel_locator = KernelLocator(costs)
        function_locator = FunctionLocator(costs)
        compactor = Compactor(costs)

        debloated: dict[str, DebloatedLibrary] = {}
        reductions: list[LibraryReduction] = []
        locate_results = {}
        locate_elapsed = 0.0
        for lib in self.framework.libraries_for(spec.features):
            with pipeline_clock.measure() as elapsed:
                gpu_res = None
                if self.options.debloat_gpu:
                    gpu_res = kernel_locator.locate(
                        lib,
                        detector.used_kernels_for(lib.soname),
                        device_arch,
                        clock=pipeline_clock,
                    )
                    locate_results[lib.soname] = gpu_res
                cpu_res = None
                if self.options.debloat_cpu:
                    cpu_res = function_locator.locate(
                        lib,
                        used_functions.get(lib.soname,
                                           np.zeros(0, dtype=np.int64)),
                        clock=pipeline_clock,
                    )
            locate_elapsed += elapsed()
            compact_start = pipeline_clock.now
            d = compactor.compact(lib, cpu_res, gpu_res, clock=pipeline_clock)
            debloated[lib.soname] = d
            reductions.append(LibraryReduction.from_debloated(lib, d))
            del compact_start

        compact_elapsed = pipeline_clock.now - locate_elapsed
        timing = DebloatTiming(
            kernel_detection_run_s=detection_metrics.execution_time_s,
            cpu_profiling_run_s=profiling_metrics.execution_time_s,
            locate_s=locate_elapsed,
            compact_s=compact_elapsed,
        )

        # 5. Verification with all debloated libraries.
        verification = None
        if self.options.verify:
            verification = verify_debloat(
                spec, self.framework, debloated, baseline, costs
            )
            if self.options.strict_verify and not verification.ok:
                raise VerificationError(
                    f"{spec.workload_id}: {verification.error}"
                )

        # 6. Runtime comparison with the top-N contributors replaced.
        debloated_run = None
        top_n = self.options.runtime_comparison_top_n
        if top_n != 0:
            ranked = sorted(
                reductions, key=lambda r: r.file_reduction_bytes, reverse=True
            )
            chosen = ranked if top_n is None else ranked[:top_n]
            overrides = {
                r.soname: debloated[r.soname].lib for r in chosen
            }
            debloated_run = WorkloadRunner(
                spec, self.framework, costs, overrides=overrides
            ).run()

        report = WorkloadDebloatReport(
            workload_id=spec.workload_id,
            device_arch=device_arch,
            libraries=reductions,
            locate_results=locate_results,
            timing=timing,
            baseline=baseline,
            detection=detection_metrics,
            debloated_run=debloated_run,
            verification=verification,
        )
        report_extras = {
            "detector_interceptions": detector.interceptions,
            "detected_kernels": detector.total_detected(),
            "profiled_functions": profiler.used_count(),
        }
        baseline.counters.update(report_extras)
        self.debloated_libraries = debloated
        return report

    # -- multi-workload debloating (paper §5 extension) ---------------------------

    def debloat_many(
        self, specs: list[WorkloadSpec]
    ) -> "MultiWorkloadReport":
        """Debloat one library set against the *union* of several workloads.

        The paper's discussion (§5) observes that code unused by one
        workload is likely unnecessary for others; this extension makes
        that actionable: detection runs once per workload, usage sets are
        unioned, each library is located/compacted once, and the result is
        verified against *every* workload.  The report exposes the marginal
        retention growth per added workload - how quickly the "needed" set
        saturates.
        """
        if not specs:
            raise VerificationError("debloat_many needs at least one workload")
        costs = self.options.costs
        arch = specs[0].devices()[0].sm_arch
        for spec in specs:
            if spec.framework != self.framework.name:
                raise VerificationError(
                    f"{spec.workload_id} targets {spec.framework!r}"
                )
            if spec.devices()[0].sm_arch != arch:
                raise VerificationError(
                    "multi-workload debloating requires one device architecture"
                )

        union_kernels: dict[str, set[str]] = {}
        union_functions: dict[str, set[int]] = {}
        baselines: list = []
        marginal_kernels: list[int] = []
        for spec in specs:
            detector = KernelDetector(costs)
            profiler = FunctionProfiler()
            baselines.append(
                WorkloadRunner(
                    spec, self.framework, costs,
                    subscribers=(detector,), profiler=profiler,
                ).run()
            )
            before = sum(len(v) for v in union_kernels.values())
            for soname, names in detector.used_kernels().items():
                union_kernels.setdefault(soname, set()).update(names)
            for soname, idx in profiler.used_functions().items():
                union_functions.setdefault(soname, set()).update(idx.tolist())
            marginal_kernels.append(
                sum(len(v) for v in union_kernels.values()) - before
            )

        features = frozenset().union(*(spec.features for spec in specs))
        kernel_locator = KernelLocator(costs)
        function_locator = FunctionLocator(costs)
        compactor = Compactor(costs)
        debloated: dict[str, DebloatedLibrary] = {}
        reductions: list[LibraryReduction] = []
        for lib in self.framework.libraries_for(features):
            gpu_res = kernel_locator.locate(
                lib, frozenset(union_kernels.get(lib.soname, ())), arch
            )
            used = np.asarray(
                sorted(union_functions.get(lib.soname, ())), dtype=np.int64
            )
            cpu_res = function_locator.locate(lib, used)
            d = compactor.compact(lib, cpu_res, gpu_res)
            debloated[lib.soname] = d
            reductions.append(LibraryReduction.from_debloated(lib, d))

        verifications = []
        if self.options.verify:
            for spec, baseline in zip(specs, baselines):
                result = verify_debloat(
                    spec, self.framework, debloated, baseline, costs
                )
                verifications.append(result)
                if self.options.strict_verify and not result.ok:
                    raise VerificationError(
                        f"{spec.workload_id}: {result.error}"
                    )
        self.debloated_libraries = debloated
        return MultiWorkloadReport(
            workload_ids=[spec.workload_id for spec in specs],
            libraries=reductions,
            verifications=verifications,
            marginal_new_kernels=marginal_kernels,
        )


@dataclass
class MultiWorkloadReport:
    """Result of debloating against a workload set (union of usage)."""

    workload_ids: list[str]
    libraries: list[LibraryReduction]
    verifications: list
    marginal_new_kernels: list[int]

    @property
    def all_verified(self) -> bool:
        return all(v.ok for v in self.verifications)

    @property
    def total_file_size(self) -> int:
        return sum(lib.file_size for lib in self.libraries)

    @property
    def total_file_size_after(self) -> int:
        return sum(lib.file_size_after for lib in self.libraries)

    @property
    def file_reduction_pct(self) -> float:
        from repro.utils.units import pct_reduction

        return pct_reduction(self.total_file_size, self.total_file_size_after)

    def saturation_series(self) -> list[tuple[str, int]]:
        """(workload, new kernels it added) - how fast usage saturates."""
        return list(zip(self.workload_ids, self.marginal_new_kernels))

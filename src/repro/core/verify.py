"""Debloat correctness verification (paper §4.1).

The paper re-runs every workload with the debloated libraries and confirms
outputs and final metrics are identical.  Here the check is *mechanical*:
the debloated run either raises (a removed-but-needed kernel/function was
hit - the locator was wrong) or completes with an output digest that must
equal the original's.  The runtime never consults usage bookkeeping when
executing, so this is a genuine end-to-end check, and tests exercise the
negative case by corrupting the retained set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compact import DebloatedLibrary
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.errors import CudaError, LoaderError
from repro.frameworks.spec import Framework
from repro.workloads.metrics import RunMetrics
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


@dataclass
class VerificationResult:
    """Outcome of re-running a workload on debloated libraries."""

    ok: bool
    original_digest: str
    debloated_digest: str | None = None
    error: str | None = None
    debloated_metrics: RunMetrics | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "verified: outputs identical"
        return f"verification FAILED: {self.error or 'digest mismatch'}"


def verify_debloat(
    spec: WorkloadSpec,
    framework: Framework,
    debloated: dict[str, DebloatedLibrary],
    baseline: RunMetrics,
    costs: CostModel = DEFAULT_COSTS,
) -> VerificationResult:
    """Re-run ``spec`` with every debloated library substituted."""
    overrides = {soname: d.lib for soname, d in debloated.items()}
    runner = WorkloadRunner(
        spec=spec, framework=framework, costs=costs, overrides=overrides
    )
    try:
        metrics = runner.run()
    except (CudaError, LoaderError) as exc:
        return VerificationResult(
            ok=False,
            original_digest=baseline.output_digest,
            error=f"{type(exc).__name__}: {exc}",
        )
    ok = metrics.output_digest == baseline.output_digest
    return VerificationResult(
        ok=ok,
        original_digest=baseline.output_digest,
        debloated_digest=metrics.output_digest,
        error=None if ok else "output digest mismatch",
        debloated_metrics=metrics,
    )

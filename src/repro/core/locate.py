"""Kernel locator (paper §3.2).

Maps detected kernel names to *file ranges to retain* in the shared
library.  The locator never needs exact kernel offsets: it extracts cubins
with the ``cuobjdump`` boundary, exploits the cubin index == element index
invariant, and retains or removes *whole elements*.  Retention criteria are
the paper's, verbatim: an element is retained iff (a) its
compute-capability matches the GPU architecture the workload runs on, and
(b) its cubin contains at least one used CPU-launching kernel.  Whole-cubin
retention is what keeps GPU-launching kernels (which the detector cannot
see) alive, because a kernel launched by another kernel is compiled into
the same cubin.

The decision hot loop runs at array speed over the library's cached
:class:`~repro.core.kindex.KernelUsageIndex`: the architecture mask is one
``==`` over the ``sm_arch`` array, used-kernel hits are a vectorized
membership probe plus ``np.bitwise_or.reduceat`` over the entry-ID CSR, and
the retain/remove :class:`~repro.utils.intervals.RangeSet`s come straight
from the masked file-range arrays.  :class:`ElementDecision` lists are
materialized from the arrays lazily - only when a report actually reads
them.  The seed per-element loop is kept verbatim as the
:mod:`repro.core._locate_py` oracle (mirroring
``repro.utils._intervals_py``) and fuzz-checked for equivalence.

Every removal is classified for the paper's Fig. 7 analysis:
Reason I - architecture mismatch; Reason II - no used kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.kindex import (
    DecisionTable,
    KernelUsageIndex,
    build_csr,
    index_for,
)
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.elf.image import SharedLibrary
from repro.errors import LocationError
from repro.fatbin.cuobjdump import ExtractedCubin
from repro.utils.intervals import RangeSet


class RemovalReason(enum.Enum):
    """Why an element was removed (paper §4.3)."""

    ARCH_MISMATCH = "Reason I"  # element does not match the GPU architecture
    NO_USED_KERNELS = "Reason II"  # matches, but contains no used kernel


@dataclass(frozen=True)
class ElementDecision:
    """The locator's verdict for one fatbin element."""

    index: int
    sm_arch: int
    size: int
    kernel_count: int
    retained: bool
    reason: RemovalReason | None
    used_entry_kernels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.retained == (self.reason is not None):
            raise LocationError("decision must have a reason iff removed")


class LocateResult:
    """All decisions for one library plus the ranges to retain/remove.

    Backed by either a materialized :class:`ElementDecision` list (the
    serialization layer and the Python oracle construct these) or a
    :class:`~repro.core.kindex.DecisionTable` of index-aligned arrays (the
    vectorized locator).  Aggregates - byte/element counts, reason counts -
    read the arrays directly when present; the decision list is built from
    the arrays only when reporting code iterates it.
    """

    def __init__(
        self,
        soname: str,
        device_arch: int,
        decisions: list[ElementDecision] | None = None,
        retain_ranges: RangeSet | None = None,
        remove_ranges: RangeSet | None = None,
        table: DecisionTable | None = None,
    ) -> None:
        if decisions is not None and table is not None:
            raise LocationError(
                "LocateResult takes decisions or a table, not both"
            )
        self.soname = soname
        self.device_arch = device_arch
        self.retain_ranges = (
            retain_ranges if retain_ranges is not None else RangeSet.empty()
        )
        self.remove_ranges = (
            remove_ranges if remove_ranges is not None else RangeSet.empty()
        )
        self.table = table
        self._decisions = (
            list(decisions)
            if decisions is not None
            else (None if table is not None else [])
        )

    @property
    def decisions(self) -> list[ElementDecision]:
        """The per-element verdicts (materialized from arrays on demand)."""
        if self._decisions is None:
            self._decisions = _materialize_decisions(self.table)
        return self._decisions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocateResult):
            return NotImplemented
        return (
            self.soname == other.soname
            and self.device_arch == other.device_arch
            and self.retain_ranges == other.retain_ranges
            and self.remove_ranges == other.remove_ranges
            and self.decisions == other.decisions
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocateResult({self.soname!r}, arch={self.device_arch}, "
            f"elements={self.element_count})"
        )

    @cached_property
    def retained(self) -> list[ElementDecision]:
        return [d for d in self.decisions if d.retained]

    @cached_property
    def removed(self) -> list[ElementDecision]:
        return [d for d in self.decisions if not d.retained]

    def removed_by_reason(self, reason: RemovalReason) -> list[ElementDecision]:
        return [d for d in self.removed if d.reason is reason]

    @property
    def element_count(self) -> int:
        if self.table is not None:
            return self.table.index.n
        return len(self.decisions)

    @property
    def retained_bytes(self) -> int:
        t = self.table
        if t is not None:
            return int(t.index.sizes[t.retained_mask].sum())
        return sum(d.size for d in self.retained)

    @property
    def removed_bytes(self) -> int:
        t = self.table
        if t is not None:
            return int(t.index.sizes[~t.retained_mask].sum())
        return sum(d.size for d in self.removed)

    def reason_counts(self) -> dict[RemovalReason, int]:
        """Removed-element count per reason, off the arrays when present."""
        t = self.table
        if t is not None:
            arch_bad = int((~t.arch_ok).sum())
            no_used = int((t.arch_ok & ~t.retained_mask).sum())
            return {
                RemovalReason.ARCH_MISMATCH: arch_bad,
                RemovalReason.NO_USED_KERNELS: no_used,
            }
        counts = {reason: 0 for reason in RemovalReason}
        for d in self.decisions:
            if not d.retained:
                counts[d.reason] += 1
        return counts

    def removed_element_indices(self) -> np.ndarray:
        """Global 1-based indices of removed elements (int64 array)."""
        t = self.table
        if t is not None:
            return t.index.element_index[~t.retained_mask]
        return np.asarray(
            [d.index for d in self.decisions if not d.retained],
            dtype=np.int64,
        )


def _materialize_decisions(table: DecisionTable) -> list[ElementDecision]:
    """Array form -> :class:`ElementDecision` list (reporting only)."""
    idx = table.index
    names_of = idx.id_to_name
    element_index = idx.element_index.tolist()
    sm_arch = idx.sm_arch.tolist()
    sizes = idx.sizes.tolist()
    kernel_counts = idx.kernel_counts.tolist()
    arch_ok = table.arch_ok.tolist()
    retained = table.retained_mask.tolist()
    ptr = table.hit_ptr.tolist()
    hit_ids = table.hit_ids.tolist()
    decisions: list[ElementDecision] = []
    for i in range(idx.n):
        if not arch_ok[i]:
            retained_i, reason, hits = False, RemovalReason.ARCH_MISMATCH, ()
        elif retained[i]:
            retained_i, reason = True, None
            hits = tuple(
                sorted(names_of[h] for h in hit_ids[ptr[i] : ptr[i + 1]])
            )
        else:
            retained_i, reason, hits = (
                False,
                RemovalReason.NO_USED_KERNELS,
                (),
            )
        decisions.append(
            ElementDecision(
                index=element_index[i],
                sm_arch=sm_arch[i],
                size=sizes[i],
                kernel_count=kernel_counts[i],
                retained=retained_i,
                reason=reason,
                used_entry_kernels=hits,
            )
        )
    return decisions


@dataclass
class KernelLocator:
    """Locates used kernels' enclosing elements in ML shared libraries."""

    costs: CostModel = DEFAULT_COSTS

    def locate(
        self,
        lib: SharedLibrary,
        used_kernels: frozenset[str],
        device_arch: int,
        clock: VirtualClock | None = None,
        cubins: list[ExtractedCubin] | None = None,
        index: KernelUsageIndex | None = None,
    ) -> LocateResult:
        """Decide retention for every fatbin element of ``lib``.

        ``used_kernels`` are the detector's recorded CPU-launching kernel
        names for this library; ``device_arch`` is the architecture of the
        GPU the workload ran on.  ``index`` lets a caller that already
        holds the library's :class:`KernelUsageIndex` pass it explicitly;
        by default the cached per-library index is used.  ``cubins`` is
        accepted for callers that still hold a raw extraction (it only
        cross-checks the element count); the charged locate cost is
        unchanged either way - the cuobjdump boundary is part of what the
        paper times.
        """
        image = lib.fatbin
        if image is None:
            return LocateResult(
                soname=lib.soname,
                device_arch=device_arch,
                decisions=[],
                retain_ranges=RangeSet.empty(),
                remove_ranges=RangeSet.empty(),
            )
        if index is None:
            index = index_for(lib)
        if cubins is not None and len(cubins) != index.n:
            raise LocationError(
                f"{lib.soname}: {len(cubins)} cubins vs {index.n} indexed "
                f"elements - stale extraction cache"
            )
        if clock is not None:
            clock.advance(
                self.costs.locate_fixed_per_lib
                + self.costs.locate_per_element * index.n
                + self.costs.locate_per_used_kernel * len(used_kernels)
            )

        arch_ok = index.sm_arch == device_arch
        used_ids = index.used_id_array(used_kernels)
        flat_hits = index.entry_hit_mask(used_ids)
        # Seed semantics: an arch-mismatched element records no hits even
        # when a used name appears in it - Reason I wins.
        flat_hits &= arch_ok[index.entry_elem]
        retained = index.element_or(flat_hits)
        hit_ptr, hit_ids = index.hit_csr(flat_hits)

        return LocateResult(
            soname=lib.soname,
            device_arch=device_arch,
            retain_ranges=RangeSet.from_arrays(
                index.starts[retained], index.stops[retained]
            ),
            remove_ranges=RangeSet.from_arrays(
                index.starts[~retained], index.stops[~retained]
            ),
            table=DecisionTable(
                index=index,
                arch_ok=arch_ok,
                retained_mask=retained,
                hit_ptr=hit_ptr,
                hit_ids=hit_ids,
            ),
        )

    def locate_delta(
        self,
        lib: SharedLibrary,
        previous: LocateResult,
        added_kernels: frozenset[str],
        clock: VirtualClock | None = None,
        cubins: list[ExtractedCubin] | None = None,
        index: KernelUsageIndex | None = None,
    ) -> LocateResult:
        """Update ``previous`` for a union that grew by ``added_kernels``.

        Retention is monotone in the used-kernel set: an architecture
        mismatch (Reason I) can never flip, a retained element stays
        retained (its ``used_entry_kernels`` may grow), and only Reason II
        removals can flip to retained when a newly used kernel lands in
        them.  The result is identical to a full :meth:`locate` against the
        grown union, but the charged cost scales with the *delta* - the
        serving store's admission win - and the cached index is probed
        instead of re-driving the cuobjdump boundary.
        """
        image = lib.fatbin
        if image is None:
            return previous
        if index is None:
            index = index_for(lib)
        if cubins is not None and len(cubins) != previous.element_count:
            raise LocationError(
                f"{lib.soname}: {len(cubins)} cubins vs "
                f"{previous.element_count} previous decisions - stale "
                f"extraction cache"
            )
        if index.n != previous.element_count:
            raise LocationError(
                f"{lib.soname}: {index.n} indexed elements vs "
                f"{previous.element_count} previous decisions - stale "
                f"extraction cache"
            )

        prev_table = previous.table
        if prev_table is None:
            return self._locate_delta_decisions(
                lib, index, previous, added_kernels, clock
            )

        added_ids = index.used_id_array(added_kernels)
        flat_new = index.entry_hit_mask(added_ids)
        flat_new &= prev_table.arch_ok[index.entry_elem]
        new_hit = index.element_or(flat_new)
        flipped = int((new_hit & ~prev_table.retained_mask).sum())
        retained = prev_table.retained_mask | new_hit

        # Merge the previous hit CSR with the new hits: concatenate,
        # sort by (element, ID), drop duplicates.
        prev_elems = np.repeat(
            np.arange(index.n, dtype=np.int64), np.diff(prev_table.hit_ptr)
        )
        new_positions = np.flatnonzero(flat_new)
        all_elems = np.concatenate(
            (prev_elems, index.entry_elem[new_positions])
        )
        all_ids = np.concatenate(
            (prev_table.hit_ids, index.entry_ids[new_positions])
        )
        order = np.lexsort((all_ids, all_elems))
        hit_ptr, all_ids = build_csr(
            all_elems[order], all_ids[order], index.n
        )

        if clock is not None:
            clock.advance(
                self.costs.locate_per_used_kernel * len(added_kernels)
                + self.costs.locate_per_element * flipped
            )

        return LocateResult(
            soname=lib.soname,
            device_arch=previous.device_arch,
            retain_ranges=RangeSet.from_arrays(
                index.starts[retained], index.stops[retained]
            ),
            remove_ranges=RangeSet.from_arrays(
                index.starts[~retained], index.stops[~retained]
            ),
            table=DecisionTable(
                index=index,
                arch_ok=prev_table.arch_ok,
                retained_mask=retained,
                hit_ptr=hit_ptr,
                hit_ids=all_ids,
            ),
        )

    def _locate_delta_decisions(
        self,
        lib: SharedLibrary,
        index: KernelUsageIndex,
        previous: LocateResult,
        added_kernels: frozenset[str],
        clock: VirtualClock | None,
    ) -> LocateResult:
        """Delta update against a decision-list ``previous`` (no table).

        Deserialized locate results carry materialized decisions only;
        this path mirrors the seed loop over the cached index so the
        output (and the charged delta cost) stays identical.
        """
        decisions: list[ElementDecision] = []
        retain: list[int] = []
        flipped = 0
        for row, prev in enumerate(previous.decisions):
            if int(index.element_index[row]) != prev.index:
                raise LocationError(
                    f"{lib.soname}: cached index does not match previous "
                    f"locate result"
                )
            decision = prev
            if prev.sm_arch == previous.device_arch:
                new_hits = (
                    set(index.element_entry_names(row)) & added_kernels
                )
                if new_hits:
                    decision = ElementDecision(
                        index=prev.index,
                        sm_arch=prev.sm_arch,
                        size=prev.size,
                        kernel_count=prev.kernel_count,
                        retained=True,
                        reason=None,
                        used_entry_kernels=tuple(
                            sorted(set(prev.used_entry_kernels) | new_hits)
                        ),
                    )
                    if not prev.retained:
                        flipped += 1
            decisions.append(decision)
            if decision.retained:
                retain.append(row)

        if clock is not None:
            clock.advance(
                self.costs.locate_per_used_kernel * len(added_kernels)
                + self.costs.locate_per_element * flipped
            )

        mask = np.zeros(index.n, dtype=bool)
        mask[retain] = True
        return LocateResult(
            soname=lib.soname,
            device_arch=previous.device_arch,
            decisions=decisions,
            retain_ranges=RangeSet.from_arrays(
                index.starts[mask], index.stops[mask]
            ),
            remove_ranges=RangeSet.from_arrays(
                index.starts[~mask], index.stops[~mask]
            ),
        )


def _ranges_from_pairs(pairs: list[tuple[int, int]]) -> RangeSet:
    """Batched RangeSet construction from collected (start, stop) pairs."""
    if not pairs:
        return RangeSet.empty()
    arr = np.asarray(pairs, dtype=np.int64)
    return RangeSet.from_arrays(arr[:, 0], arr[:, 1])

"""Kernel locator (paper §3.2).

Maps detected kernel names to *file ranges to retain* in the shared
library.  The locator never needs exact kernel offsets: it extracts cubins
with the ``cuobjdump`` boundary, exploits the cubin index == element index
invariant, and retains or removes *whole elements*.  Retention criteria are
the paper's, verbatim: an element is retained iff (a) its
compute-capability matches the GPU architecture the workload runs on, and
(b) its cubin contains at least one used CPU-launching kernel.  Whole-cubin
retention is what keeps GPU-launching kernels (which the detector cannot
see) alive, because a kernel launched by another kernel is compiled into
the same cubin.

Every removal is classified for the paper's Fig. 7 analysis:
Reason I - architecture mismatch; Reason II - no used kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.elf.image import SharedLibrary
from repro.errors import LocationError
from repro.fatbin.cuobjdump import ExtractedCubin, extract_cubins
from repro.utils.intervals import RangeSet


class RemovalReason(enum.Enum):
    """Why an element was removed (paper §4.3)."""

    ARCH_MISMATCH = "Reason I"  # element does not match the GPU architecture
    NO_USED_KERNELS = "Reason II"  # matches, but contains no used kernel


@dataclass(frozen=True)
class ElementDecision:
    """The locator's verdict for one fatbin element."""

    index: int
    sm_arch: int
    size: int
    kernel_count: int
    retained: bool
    reason: RemovalReason | None
    used_entry_kernels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.retained == (self.reason is not None):
            raise LocationError("decision must have a reason iff removed")


@dataclass
class LocateResult:
    """All decisions for one library plus the ranges to retain/remove."""

    soname: str
    device_arch: int
    decisions: list[ElementDecision]
    retain_ranges: RangeSet
    remove_ranges: RangeSet

    @cached_property
    def retained(self) -> list[ElementDecision]:
        return [d for d in self.decisions if d.retained]

    @cached_property
    def removed(self) -> list[ElementDecision]:
        return [d for d in self.decisions if not d.retained]

    def removed_by_reason(self, reason: RemovalReason) -> list[ElementDecision]:
        return [d for d in self.removed if d.reason is reason]

    @property
    def element_count(self) -> int:
        return len(self.decisions)

    @property
    def retained_bytes(self) -> int:
        return sum(d.size for d in self.retained)

    @property
    def removed_bytes(self) -> int:
        return sum(d.size for d in self.removed)


@dataclass
class KernelLocator:
    """Locates used kernels' enclosing elements in ML shared libraries."""

    costs: CostModel = DEFAULT_COSTS

    def locate(
        self,
        lib: SharedLibrary,
        used_kernels: frozenset[str],
        device_arch: int,
        clock: VirtualClock | None = None,
        cubins: list[ExtractedCubin] | None = None,
    ) -> LocateResult:
        """Decide retention for every fatbin element of ``lib``.

        ``used_kernels`` are the detector's recorded CPU-launching kernel
        names for this library; ``device_arch`` is the architecture of the
        GPU the workload ran on.  ``cubins`` lets a caller that already
        extracted the library's cubins (the serving store keeps them per
        library) skip re-extraction; the charged locate cost is unchanged -
        the cuobjdump boundary is part of what the paper times.
        """
        image = lib.fatbin
        if image is None:
            return LocateResult(
                soname=lib.soname,
                device_arch=device_arch,
                decisions=[],
                retain_ranges=RangeSet.empty(),
                remove_ranges=RangeSet.empty(),
            )

        if cubins is None:
            cubins = extract_cubins(lib)
        if clock is not None:
            clock.advance(
                self.costs.locate_fixed_per_lib
                + self.costs.locate_per_element * len(cubins)
                + self.costs.locate_per_used_kernel * len(used_kernels)
            )

        decisions: list[ElementDecision] = []
        retain: list[tuple[int, int]] = []
        remove: list[tuple[int, int]] = []
        for extracted in cubins:
            element = image.element_by_index(extracted.index)
            if element.sm_arch != extracted.sm_arch:
                raise LocationError(
                    f"{lib.soname}: cuobjdump index {extracted.index} does not "
                    f"match element order"
                )
            rng = element.file_range
            if extracted.sm_arch != device_arch:
                decision = ElementDecision(
                    index=extracted.index,
                    sm_arch=extracted.sm_arch,
                    size=len(rng),
                    kernel_count=len(extracted.kernel_names),
                    retained=False,
                    reason=RemovalReason.ARCH_MISMATCH,
                )
            else:
                # Entry kernels only: GPU-launching kernels ride along via
                # whole-element retention.
                hits = tuple(
                    sorted(set(extracted.entry_kernel_names) & used_kernels)
                )
                if hits:
                    decision = ElementDecision(
                        index=extracted.index,
                        sm_arch=extracted.sm_arch,
                        size=len(rng),
                        kernel_count=len(extracted.kernel_names),
                        retained=True,
                        reason=None,
                        used_entry_kernels=hits,
                    )
                else:
                    decision = ElementDecision(
                        index=extracted.index,
                        sm_arch=extracted.sm_arch,
                        size=len(rng),
                        kernel_count=len(extracted.kernel_names),
                        retained=False,
                        reason=RemovalReason.NO_USED_KERNELS,
                    )
            decisions.append(decision)
            (retain if decision.retained else remove).append(
                (rng.start, rng.stop)
            )

        return LocateResult(
            soname=lib.soname,
            device_arch=device_arch,
            decisions=decisions,
            retain_ranges=_ranges_from_pairs(retain),
            remove_ranges=_ranges_from_pairs(remove),
        )

    def locate_delta(
        self,
        lib: SharedLibrary,
        previous: LocateResult,
        added_kernels: frozenset[str],
        clock: VirtualClock | None = None,
        cubins: list[ExtractedCubin] | None = None,
    ) -> LocateResult:
        """Update ``previous`` for a union that grew by ``added_kernels``.

        Retention is monotone in the used-kernel set: an architecture
        mismatch (Reason I) can never flip, a retained element stays
        retained (its ``used_entry_kernels`` may grow), and only Reason II
        removals can flip to retained when a newly used kernel lands in
        them.  The result is identical to a full :meth:`locate` against the
        grown union, but the charged cost scales with the *delta* - the
        serving store's admission win - and cached cubin extractions are
        reused instead of re-driving the cuobjdump boundary.
        """
        image = lib.fatbin
        if image is None:
            return previous
        if cubins is None:
            cubins = extract_cubins(lib)

        if len(cubins) != len(previous.decisions):
            raise LocationError(
                f"{lib.soname}: {len(cubins)} cubins vs "
                f"{len(previous.decisions)} previous decisions - stale "
                f"extraction cache"
            )
        decisions: list[ElementDecision] = []
        retain: list[tuple[int, int]] = []
        remove: list[tuple[int, int]] = []
        flipped = 0
        for extracted, prev in zip(cubins, previous.decisions):
            if extracted.index != prev.index:
                raise LocationError(
                    f"{lib.soname}: cached cubins do not match previous "
                    f"locate result"
                )
            decision = prev
            if prev.sm_arch == previous.device_arch:
                new_hits = set(extracted.entry_kernel_names) & added_kernels
                if new_hits:
                    decision = ElementDecision(
                        index=prev.index,
                        sm_arch=prev.sm_arch,
                        size=prev.size,
                        kernel_count=prev.kernel_count,
                        retained=True,
                        reason=None,
                        used_entry_kernels=tuple(
                            sorted(set(prev.used_entry_kernels) | new_hits)
                        ),
                    )
                    if not prev.retained:
                        flipped += 1
            decisions.append(decision)
            rng = image.element_by_index(decision.index).file_range
            (retain if decision.retained else remove).append(
                (rng.start, rng.stop)
            )

        if clock is not None:
            clock.advance(
                self.costs.locate_per_used_kernel * len(added_kernels)
                + self.costs.locate_per_element * flipped
            )

        return LocateResult(
            soname=lib.soname,
            device_arch=previous.device_arch,
            decisions=decisions,
            retain_ranges=_ranges_from_pairs(retain),
            remove_ranges=_ranges_from_pairs(remove),
        )


def _ranges_from_pairs(pairs: list[tuple[int, int]]) -> RangeSet:
    """Batched RangeSet construction from collected (start, stop) pairs."""
    if not pairs:
        return RangeSet.empty()
    arr = np.asarray(pairs, dtype=np.int64)
    return RangeSet.from_arrays(arr[:, 0], arr[:, 1])

"""Used-bloat analysis (the paper's §5 future-work direction).

The paper distinguishes *unused* bloat (what Negativa-ML removes) from
"used bloat" - "code executed by a workload but not contributing
meaningfully to the performance or functionality", e.g. an optimizer
initializing a context through "numerous non-essential function calls".  It
points at TensorFlow's larger-but-less-reducible CPU code as the symptom
and leaves detection to future work.

This module implements the natural first-order detector: partition each
library's *executed* functions into **startup-only** code (first executed
before the workload's steady state - import machinery, registrations,
context initialization that never runs again) and **recurring** code (first
executed inside the iteration loop).  Startup-only bytes are the used-bloat
candidates: they execute once, contribute no per-iteration work, yet occupy
memory for the process lifetime and cannot be removed by usage-based
debloating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frameworks.spec import Framework
from repro.utils.units import pct_reduction
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class LibraryUsedBloat:
    """Used-bloat accounting for one library."""

    soname: str
    used_functions: int
    startup_only_functions: int
    used_bytes: int
    startup_only_bytes: int

    @property
    def recurring_functions(self) -> int:
        return self.used_functions - self.startup_only_functions

    @property
    def startup_share_pct(self) -> float:
        """Share of *executed* code bytes that never runs again."""
        if self.used_bytes == 0:
            return 0.0
        return 100.0 * self.startup_only_bytes / self.used_bytes


@dataclass
class UsedBloatReport:
    """Per-workload used-bloat analysis."""

    workload_id: str
    libraries: list[LibraryUsedBloat]

    @property
    def total_used_bytes(self) -> int:
        return sum(lib.used_bytes for lib in self.libraries)

    @property
    def total_startup_only_bytes(self) -> int:
        return sum(lib.startup_only_bytes for lib in self.libraries)

    @property
    def startup_share_pct(self) -> float:
        if self.total_used_bytes == 0:
            return 0.0
        return 100.0 * self.total_startup_only_bytes / self.total_used_bytes

    def library(self, soname: str) -> LibraryUsedBloat:
        for lib in self.libraries:
            if lib.soname == soname:
                return lib
        raise KeyError(soname)

    def top_by_startup_bytes(self, n: int) -> list[LibraryUsedBloat]:
        return sorted(
            self.libraries, key=lambda l: l.startup_only_bytes, reverse=True
        )[:n]


def analyze_used_bloat(
    spec: WorkloadSpec, framework: Framework
) -> UsedBloatReport:
    """Run ``spec`` and partition executed code into startup-only/recurring.

    Requires only the loader's phase bookkeeping - no extra instrumentation
    run, so this analysis is free when piggybacked on a profiling run.
    """
    runner = WorkloadRunner(spec, framework)
    runner.run()
    process = runner.runtime.process

    libraries: list[LibraryUsedBloat] = []
    for soname, loaded in process.libraries.items():
        used = loaded.used_mask
        startup = (
            loaded.startup_mask
            if loaded.startup_mask is not None
            else np.zeros_like(used)
        )
        sizes = loaded.lib.symtab.sizes.astype(np.int64)
        startup_only = used & startup
        libraries.append(
            LibraryUsedBloat(
                soname=soname,
                used_functions=int(used.sum()),
                startup_only_functions=int(startup_only.sum()),
                used_bytes=int(sizes[used].sum()),
                startup_only_bytes=int(sizes[startup_only].sum()),
            )
        )
    return UsedBloatReport(workload_id=spec.workload_id, libraries=libraries)

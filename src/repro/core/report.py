"""Debloating reports: the numbers every table in the paper is built from.

A :class:`LibraryReduction` is one row of the per-library accounting (file
size, CPU code size, function count, GPU code size, element count - each
before/after); a :class:`WorkloadDebloatReport` aggregates a workload's
libraries and carries the run metrics, element decisions, timings, and
verification result the experiments render.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compact import DebloatedLibrary
from repro.core.locate import ElementDecision, LocateResult, RemovalReason
from repro.core.verify import VerificationResult
from repro.elf.image import SharedLibrary
from repro.utils.units import pct_reduction
from repro.workloads.metrics import RunMetrics


@dataclass(frozen=True)
class LibraryReduction:
    """Before/after metrics for one shared library."""

    soname: str
    file_size: int
    cpu_size: int
    n_functions: int
    gpu_size: int
    n_elements: int
    file_size_after: int
    cpu_size_after: int
    n_functions_after: int
    gpu_size_after: int
    n_elements_after: int

    @classmethod
    def from_debloated(
        cls, original: SharedLibrary, debloated: DebloatedLibrary
    ) -> "LibraryReduction":
        return cls(
            soname=original.soname,
            file_size=original.file_size,
            cpu_size=original.cpu_code_size,
            n_functions=original.function_count,
            gpu_size=original.gpu_code_size,
            n_elements=original.element_count,
            file_size_after=debloated.compacted_file_size,
            cpu_size_after=original.cpu_code_size - debloated.removed_cpu_bytes,
            n_functions_after=original.function_count - debloated.removed_functions,
            gpu_size_after=original.gpu_code_size - debloated.removed_gpu_bytes,
            n_elements_after=original.element_count - debloated.removed_elements,
        )

    # -- reductions --------------------------------------------------------------

    @property
    def file_reduction_bytes(self) -> int:
        return self.file_size - self.file_size_after

    @property
    def file_reduction_pct(self) -> float:
        return pct_reduction(self.file_size, self.file_size_after)

    @property
    def cpu_reduction_pct(self) -> float:
        return pct_reduction(self.cpu_size, self.cpu_size_after)

    @property
    def function_reduction_pct(self) -> float:
        return pct_reduction(self.n_functions, self.n_functions_after)

    @property
    def gpu_reduction_pct(self) -> float:
        return pct_reduction(self.gpu_size, self.gpu_size_after)

    @property
    def element_reduction_pct(self) -> float:
        return pct_reduction(self.n_elements, self.n_elements_after)

    @property
    def has_gpu_code(self) -> bool:
        return self.gpu_size > 0


@dataclass
class DebloatTiming:
    """Virtual-time breakdown of the debloating pipeline (paper Table 8).

    The pipeline runs detection and CPU profiling *fused* in a single
    instrumented run (``instrumented_run_s``); tool overheads are additive
    and exactly attributable on the deterministic clock, so
    ``kernel_detection_run_s`` and ``cpu_profiling_run_s`` report what each
    standalone run would have cost - the quantity the paper's Table 8
    measures - without ever executing them separately.
    """

    kernel_detection_run_s: float = 0.0
    cpu_profiling_run_s: float = 0.0
    locate_s: float = 0.0
    compact_s: float = 0.0
    #: Actual cost of the single fused detection+profiling run (0.0 when a
    #: report predates the fused pipeline).
    instrumented_run_s: float = 0.0
    #: What a standalone ``nsys --trace=cuda`` run of this workload would
    #: have cost, attributed from the passive tracer riding the fused run
    #: (§4.6 tool-stack comparison without an extra workload run; 0.0 when a
    #: report predates the attribution).
    nsys_traced_run_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end time in the paper's separate-run accounting."""
        return (
            self.kernel_detection_run_s
            + self.cpu_profiling_run_s
            + self.locate_s
            + self.compact_s
        )

    @property
    def fused_total_s(self) -> float:
        """End-to-end time actually spent by the fused pipeline."""
        if not self.instrumented_run_s:
            return self.total_s
        return self.instrumented_run_s + self.locate_s + self.compact_s


@dataclass
class WorkloadDebloatReport:
    """Everything Negativa-ML produced for one workload."""

    workload_id: str
    device_arch: int
    libraries: list[LibraryReduction]
    locate_results: dict[str, LocateResult]
    timing: DebloatTiming
    baseline: RunMetrics
    #: Metrics of the single *fused* instrumented run (kernel detector AND
    #: CPU profiler attached), so ``detection.execution_time_s`` includes
    #: both tool overheads - use ``timing.kernel_detection_run_s`` for the
    #: standalone detection-run time the paper reports.
    detection: RunMetrics | None = None
    debloated_run: RunMetrics | None = None
    verification: VerificationResult | None = None

    # -- aggregates (paper Table 2 row) ------------------------------------------------

    @property
    def n_libraries(self) -> int:
        return len(self.libraries)

    def _sum(self, attr: str) -> int:
        return sum(getattr(lib, attr) for lib in self.libraries)

    @property
    def total_file_size(self) -> int:
        return self._sum("file_size")

    @property
    def total_file_size_after(self) -> int:
        return self._sum("file_size_after")

    @property
    def total_cpu_size(self) -> int:
        return self._sum("cpu_size")

    @property
    def total_cpu_size_after(self) -> int:
        return self._sum("cpu_size_after")

    @property
    def total_functions(self) -> int:
        return self._sum("n_functions")

    @property
    def total_functions_after(self) -> int:
        return self._sum("n_functions_after")

    @property
    def total_gpu_size(self) -> int:
        return self._sum("gpu_size")

    @property
    def total_gpu_size_after(self) -> int:
        return self._sum("gpu_size_after")

    @property
    def total_elements(self) -> int:
        return self._sum("n_elements")

    @property
    def total_elements_after(self) -> int:
        return self._sum("n_elements_after")

    @property
    def file_reduction_pct(self) -> float:
        return pct_reduction(self.total_file_size, self.total_file_size_after)

    @property
    def cpu_reduction_pct(self) -> float:
        return pct_reduction(self.total_cpu_size, self.total_cpu_size_after)

    @property
    def function_reduction_pct(self) -> float:
        return pct_reduction(self.total_functions, self.total_functions_after)

    @property
    def gpu_reduction_pct(self) -> float:
        return pct_reduction(self.total_gpu_size, self.total_gpu_size_after)

    @property
    def element_reduction_pct(self) -> float:
        return pct_reduction(self.total_elements, self.total_elements_after)

    # -- analyses -----------------------------------------------------------------------

    def library(self, soname: str) -> LibraryReduction:
        for lib in self.libraries:
            if lib.soname == soname:
                return lib
        raise KeyError(soname)

    def top_by_file_reduction(self, n: int) -> list[LibraryReduction]:
        return sorted(
            self.libraries, key=lambda r: r.file_reduction_bytes, reverse=True
        )[:n]

    def largest_library(self) -> LibraryReduction:
        return max(self.libraries, key=lambda r: r.file_size)

    def element_decisions(self) -> list[ElementDecision]:
        return [
            d for res in self.locate_results.values() for d in res.decisions
        ]

    def removal_reason_shares(self) -> dict[RemovalReason, float]:
        """Percentage of removed elements per reason (paper Fig. 7).

        Summed from each locate result's vectorized
        :meth:`~repro.core.locate.LocateResult.reason_counts`, so no
        decision list is materialized just to count removals.
        """
        counts = {reason: 0 for reason in RemovalReason}
        for res in self.locate_results.values():
            for reason, count in res.reason_counts().items():
                counts[reason] += count
        total = sum(counts.values())
        if not total:
            return {reason: 0.0 for reason in RemovalReason}
        return {
            reason: 100.0 * counts[reason] / total
            for reason in RemovalReason
        }

"""Per-library kernel-usage index: the locate phase's array backbone.

The seed locator re-ran the ``cuobjdump`` extraction and intersected Python
``set``s of kernel names per element - interpreter-speed work that made the
per-library fan-out GIL-bound.  :class:`KernelUsageIndex` turns one pass
over a library's fatbin into flat NumPy arrays the locator can query at
array speed:

* kernel **names become sorted int64 IDs** - stable blake2 hashes (salted
  deterministically until collision-free, see :func:`assign_name_ids`), so
  set intersections become ``np.searchsorted`` probes;
* **entry-kernel membership is a CSR layout**: ``entry_ptr`` (one slot per
  element, +1) into a flat ``entry_ids`` array sorted within each segment,
  so "does any used kernel land in this element" is one vectorized
  membership test plus ``np.bitwise_or.reduceat`` over the segments;
* ``sm_arch``, file-range and size live in **parallel arrays**, so the
  architecture mask and the retain/remove :class:`~repro.utils.intervals.
  RangeSet`s fall straight out of boolean indexing.

The index is a pure function of the library bytes and is cached on the
:class:`~repro.elf.image.SharedLibrary` instance (:func:`index_for`), so
repeated locates - pipeline re-runs, serving admissions, ``cuobjdump``
queries - never re-walk the fatbin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.elf.image import SharedLibrary
from repro.errors import LocationError

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Deterministic salts tried before declaring the name set unhashable; real
#: 64-bit blake2 collisions are astronomically unlikely, so the loop exists
#: purely as a correctness guarantee (and a seam for the regression test).
MAX_ID_SALTS = 64


def name_id(name: str, salt: int = 0) -> int:
    """Stable signed-int64 ID of one kernel name (blake2b, salted)."""
    digest = hashlib.blake2b(
        name.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little", signed=True)


def assign_name_ids(names) -> tuple[dict[str, int], int]:
    """Collision-free ``name -> int64`` table for a library's kernel names.

    IDs are :func:`name_id` hashes; if two distinct names ever collide the
    whole table is re-derived with the next salt, so the mapping is always
    a bijection and deterministic across processes.
    """
    unique = sorted(set(names))
    for salt in range(MAX_ID_SALTS):
        table = {n: name_id(n, salt) for n in unique}
        if len(set(table.values())) == len(table):
            return table, salt
    raise LocationError(
        f"kernel name-ID table: unresolvable hash collisions across "
        f"{MAX_ID_SALTS} salts for {len(unique)} names"
    )


@dataclass
class KernelUsageIndex:
    """Vectorized view of one library's fatbin elements and kernel names.

    All per-element arrays are aligned and ordered by file position (the
    ``cuobjdump`` extraction order); ``element_index`` carries the global
    1-based indices the rest of the pipeline uses.
    """

    soname: str
    #: Global 1-based fatbin element indices, in file order.
    element_index: np.ndarray
    #: Per-element compute capability.
    sm_arch: np.ndarray
    #: Per-element file-range starts/stops (header + padded payload).
    starts: np.ndarray
    stops: np.ndarray
    #: CSR over *all* kernel names per element, in cubin order.
    kernel_ptr: np.ndarray
    kernel_ids: np.ndarray
    #: Flat kernel names aligned with ``kernel_ids`` (reporting/queries).
    kernel_names: tuple[str, ...]
    #: ``kernel_ids`` positions that are CPU-launchable (ENTRY) kernels.
    entry_mask: np.ndarray
    #: CSR over entry-kernel IDs, each segment sorted ascending.
    entry_ptr: np.ndarray
    entry_ids: np.ndarray
    #: Element position (0-based row) of each ``entry_ids`` slot.
    entry_elem: np.ndarray
    #: Collision-free name table and the salt that produced it.
    name_to_id: dict[str, int]
    salt: int
    id_to_name: dict[int, str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.id_to_name = {v: k for k, v in self.name_to_id.items()}

    # -- geometry --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Element count."""
        return int(self.element_index.size)

    @cached_property
    def sizes(self) -> np.ndarray:
        return self.stops - self.starts

    @cached_property
    def kernel_counts(self) -> np.ndarray:
        """Per-element total kernel count (duplicates preserved)."""
        return np.diff(self.kernel_ptr)

    @cached_property
    def kernel_elem(self) -> np.ndarray:
        """Element position (0-based row) of each ``kernel_ids`` slot."""
        return np.repeat(
            np.arange(self.n, dtype=np.int64), self.kernel_counts
        )

    # -- queries ---------------------------------------------------------------

    def used_id_array(self, used_kernels) -> np.ndarray:
        """Sorted unique IDs of the used names this library knows about.

        Names absent from the library map to nothing (the seed semantics:
        intersection with the element's name set), so unknown names can
        never produce a false hit through an ID coincidence.
        """
        table = self.name_to_id
        ids = [table[name] for name in used_kernels if name in table]
        if not ids:
            return _EMPTY_I64
        arr = np.asarray(ids, dtype=np.int64)
        arr.sort()
        return arr

    def entry_hit_mask(self, used_ids: np.ndarray) -> np.ndarray:
        """Flat boolean mask over ``entry_ids``: slot is a used kernel.

        ``used_ids`` must be sorted (``used_id_array`` output); membership
        is one ``np.searchsorted`` probe per slot.
        """
        if used_ids.size == 0 or self.entry_ids.size == 0:
            return np.zeros(self.entry_ids.size, dtype=bool)
        pos = np.searchsorted(used_ids, self.entry_ids)
        pos_c = np.minimum(pos, used_ids.size - 1)
        return (pos < used_ids.size) & (used_ids[pos_c] == self.entry_ids)

    def element_or(self, flat_mask: np.ndarray) -> np.ndarray:
        """OR-reduce a flat entry-slot mask into one boolean per element."""
        out = np.zeros(self.n, dtype=bool)
        if flat_mask.size == 0 or not flat_mask.any():
            return out
        lengths = np.diff(self.entry_ptr)
        valid = lengths > 0
        # Valid segment starts partition the flat array exactly (empty
        # segments contribute no slots), so reduceat over them is per-
        # element OR without any special-casing of zero-length runs.
        out[valid] = np.bitwise_or.reduceat(
            flat_mask, self.entry_ptr[:-1][valid]
        )
        return out

    def hit_csr(
        self, flat_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ptr, ids) CSR of the *hit* entry IDs selected by ``flat_mask``.

        Segments inherit the sortedness of ``entry_ids``; duplicate IDs
        within an element (duplicate names in one cubin) are dropped so
        hit segments are sorted-unique sets.
        """
        positions = np.flatnonzero(flat_mask)
        return build_csr(
            self.entry_elem[positions], self.entry_ids[positions], self.n
        )

    def names_for_ids(self, ids) -> list[str]:
        table = self.id_to_name
        return [table[int(i)] for i in ids]

    def element_names(self, row: int) -> tuple[str, ...]:
        """All kernel names of the element at array ``row`` (cubin order)."""
        lo, hi = int(self.kernel_ptr[row]), int(self.kernel_ptr[row + 1])
        return self.kernel_names[lo:hi]

    def element_entry_names(self, row: int) -> tuple[str, ...]:
        """Entry-kernel names of the element at ``row`` (cubin order)."""
        lo, hi = int(self.kernel_ptr[row]), int(self.kernel_ptr[row + 1])
        mask = self.entry_mask[lo:hi]
        return tuple(
            name for name, m in zip(self.kernel_names[lo:hi], mask) if m
        )


def build_csr(
    elems: np.ndarray, ids: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """(element, id) pairs, sorted by (element, id) -> sorted-unique CSR.

    Adjacent duplicates are dropped and the pointer array is one
    bincount + cumsum, so every hit-CSR construction (full locate, delta
    merge) shares one implementation.
    """
    if ids.size:
        keep = np.ones(ids.size, dtype=bool)
        keep[1:] = (elems[1:] != elems[:-1]) | (ids[1:] != ids[:-1])
        elems, ids = elems[keep], ids[keep]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(elems, minlength=n), out=ptr[1:])
    return ptr, ids


@dataclass
class DecisionTable:
    """Array form of a locate result, aligned with its library's index.

    ``arch_ok`` and ``retained_mask`` are per-element booleans;
    ``hit_ptr``/``hit_ids`` are a CSR of the *used* entry-kernel IDs per
    retained element (sorted-unique segments).  The locator's aggregates
    read these arrays directly; :class:`~repro.core.locate.ElementDecision`
    lists are materialized from them only for reporting.
    """

    index: KernelUsageIndex
    arch_ok: np.ndarray
    retained_mask: np.ndarray
    hit_ptr: np.ndarray
    hit_ids: np.ndarray


def build_index(lib: SharedLibrary) -> KernelUsageIndex:
    """One pass over the fatbin: names, IDs, CSR layouts, geometry arrays."""
    image = lib.fatbin
    elements = image.elements() if image is not None else []
    n = len(elements)

    element_index = np.empty(n, dtype=np.int64)
    sm_arch = np.empty(n, dtype=np.int64)
    starts = np.empty(n, dtype=np.int64)
    stops = np.empty(n, dtype=np.int64)
    kernel_ptr = np.zeros(n + 1, dtype=np.int64)
    flat_names: list[str] = []
    entry_chunks: list[np.ndarray] = []
    for row, element in enumerate(elements):
        cubin = element.cubin
        element_index[row] = element.index
        sm_arch[row] = element.sm_arch
        rng = element.file_range
        starts[row] = rng.start
        stops[row] = rng.stop
        flat_names.extend(cubin.names)
        kernel_ptr[row + 1] = len(flat_names)
        entry_chunks.append(cubin.entry_mask())

    name_to_id, salt = assign_name_ids(flat_names)
    kernel_ids = (
        np.fromiter(
            (name_to_id[name] for name in flat_names),
            dtype=np.int64,
            count=len(flat_names),
        )
        if flat_names
        else _EMPTY_I64.copy()
    )
    entry_mask = (
        np.concatenate(entry_chunks)
        if entry_chunks
        else np.zeros(0, dtype=bool)
    )

    kernel_elem = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(kernel_ptr)
    )
    entry_elem_raw = kernel_elem[entry_mask]
    entry_ids_raw = kernel_ids[entry_mask]
    # Sort within each element segment (stable by element, then ID).
    order = np.lexsort((entry_ids_raw, entry_elem_raw))
    entry_elem = entry_elem_raw[order]
    entry_ids = entry_ids_raw[order]
    entry_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(entry_elem, minlength=n), out=entry_ptr[1:])

    return KernelUsageIndex(
        soname=lib.soname,
        element_index=element_index,
        sm_arch=sm_arch,
        starts=starts,
        stops=stops,
        kernel_ptr=kernel_ptr,
        kernel_ids=kernel_ids,
        kernel_names=tuple(flat_names),
        entry_mask=entry_mask,
        entry_ptr=entry_ptr,
        entry_ids=entry_ids,
        entry_elem=entry_elem,
        name_to_id=name_to_id,
        salt=salt,
    )


#: Cached-value payload kind of a persisted index (disk cache tier).
INDEX_KIND = "kernel_usage_index"


def index_to_payload(index: KernelUsageIndex) -> dict:
    """Wire form of an index (``value_dumps``-compatible payload tree).

    Everything but the name table ships as raw arrays; ``name_to_id`` is
    rebuilt from the flat (name, ID) pairs on load, so a restored index
    skips both the fatbin walk *and* the per-name blake2 hashing.
    """
    return {
        "soname": index.soname,
        "salt": int(index.salt),
        "element_index": index.element_index,
        "sm_arch": index.sm_arch,
        "starts": index.starts,
        "stops": index.stops,
        "kernel_ptr": index.kernel_ptr,
        "kernel_ids": index.kernel_ids,
        "kernel_names": list(index.kernel_names),
        "entry_mask": index.entry_mask,
        "entry_ptr": index.entry_ptr,
        "entry_ids": index.entry_ids,
        "entry_elem": index.entry_elem,
    }


def index_from_payload(payload: dict) -> KernelUsageIndex:
    """Rebuild an index from :func:`index_to_payload` output.

    Raises :class:`~repro.errors.CacheDecodeError` on any structural
    problem, so cache readers treat a damaged entry as a miss and
    recompute.
    """
    from repro.errors import CacheDecodeError

    try:
        names = tuple(payload["kernel_names"])
        kernel_ids = np.asarray(payload["kernel_ids"], dtype=np.int64)
        if len(names) != kernel_ids.size:
            raise CacheDecodeError(
                f"index payload: {len(names)} names vs {kernel_ids.size} ids"
            )
        return KernelUsageIndex(
            soname=payload["soname"],
            element_index=np.asarray(
                payload["element_index"], dtype=np.int64
            ),
            sm_arch=np.asarray(payload["sm_arch"], dtype=np.int64),
            starts=np.asarray(payload["starts"], dtype=np.int64),
            stops=np.asarray(payload["stops"], dtype=np.int64),
            kernel_ptr=np.asarray(payload["kernel_ptr"], dtype=np.int64),
            kernel_ids=kernel_ids,
            kernel_names=names,
            entry_mask=np.asarray(payload["entry_mask"], dtype=bool),
            entry_ptr=np.asarray(payload["entry_ptr"], dtype=np.int64),
            entry_ids=np.asarray(payload["entry_ids"], dtype=np.int64),
            entry_elem=np.asarray(payload["entry_elem"], dtype=np.int64),
            name_to_id=dict(zip(names, kernel_ids.tolist())),
            salt=int(payload["salt"]),
        )
    except CacheDecodeError:
        raise
    except Exception as exc:  # malformed tree of any shape -> decode error
        raise CacheDecodeError(f"malformed index payload: {exc}") from exc


def index_matches_library(
    index: KernelUsageIndex, lib: SharedLibrary
) -> bool:
    """Cheap structural sanity check for a persisted index.

    The disk digest already covers the framework build, so this only
    guards against cross-wiring (an entry served for the wrong library):
    soname and element count must line up with the parsed fatbin headers.
    """
    image = lib.fatbin
    return (
        index.soname == lib.soname
        and image is not None
        and index.n == image.element_count()
    )


def cached_index(lib: SharedLibrary) -> KernelUsageIndex | None:
    """The index already attached to ``lib``, or None.

    The one accessor for the per-library attribute cache - callers (the
    pipeline cache's persisted tier included) must never spell the
    attribute name themselves, so the caching contract lives here alone.
    """
    return getattr(lib, "_kernel_usage_index", None)


def remember_index(lib: SharedLibrary, index: KernelUsageIndex) -> None:
    """Attach ``index`` as the library's cached index (see :func:`cached_index`)."""
    lib._kernel_usage_index = index


def index_for(lib: SharedLibrary) -> KernelUsageIndex:
    """The library's cached index (built on first use, then reused).

    The cache rides on the :class:`SharedLibrary` instance itself -
    libraries are immutable once parsed, and a compacted copy is a *new*
    instance - so serving admissions, repeated pipeline runs and
    ``cuobjdump`` queries over the same generated framework all share one
    build.
    """
    index = cached_index(lib)
    if index is None:
        index = build_index(lib)
        remember_index(lib, index)
    return index

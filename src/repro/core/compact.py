"""Compaction (Negativa's third phase, paper §3.2 "Compaction").

Removed ranges are zeroed in place while the library stays structurally
loadable: ELF headers, section headers, symbol tables, and fatbin
region/element headers are never touched, and removed fatbin elements are
flagged ``ELEMENT_FLAG_REMOVED`` in their headers so loaders skip them
instead of parsing zeroed cubins.  File offsets of retained code never
move - the "map file offsets to original memory addresses" property the
paper inherits from Negativa - while the *on-disk* size drops by the
removed bytes (holes), which is the file-size reduction the tables report.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.elf.image import SharedLibrary
from repro.elf.parser import parse_shared_library
from repro.elf.validate import validate_shared_library
from repro.errors import CompactionError
from repro.fatbin import constants as FC
from repro.core.cpu import FunctionLocateResult
from repro.core.locate import LocateResult
from repro.utils.intervals import RangeSet

#: Byte offset of the ``flags`` field inside an element header
#: (kind/version/header_size/sm_arch: 4 x u16; payload/padded: 2 x u64;
#: compressed: u32 - then flags).
_ELEMENT_FLAGS_OFFSET = 8 + 16 + 4


@dataclass
class DebloatedLibrary:
    """A compacted library plus its removal record."""

    lib: SharedLibrary
    original: SharedLibrary
    removed_cpu_ranges: RangeSet
    removed_gpu_ranges: RangeSet
    removed_elements: int
    removed_functions: int

    @property
    def soname(self) -> str:
        return self.lib.soname

    @property
    def removed_cpu_bytes(self) -> int:
        return self.removed_cpu_ranges.total()

    @property
    def removed_gpu_bytes(self) -> int:
        return self.removed_gpu_ranges.total()

    @property
    def removed_bytes_total(self) -> int:
        return self.removed_cpu_bytes + self.removed_gpu_bytes

    @cached_property
    def compacted_file_size(self) -> int:
        """On-disk size after compaction (holes do not occupy storage)."""
        return self.original.file_size - self.removed_bytes_total


@dataclass
class Compactor:
    """Zeroes removed ranges and marks removed elements."""

    costs: CostModel = DEFAULT_COSTS

    def compact(
        self,
        lib: SharedLibrary,
        cpu: FunctionLocateResult | None = None,
        gpu: LocateResult | None = None,
        clock: VirtualClock | None = None,
        validate: bool = True,
    ) -> DebloatedLibrary:
        """Produce the debloated library.

        ``cpu`` is the CPU-function locate result (None = keep all CPU
        code); ``gpu`` the kernel-locate result (None = keep all GPU code).
        """
        data = lib.data.copy()
        removed_cpu = RangeSet.empty()
        removed_gpu = RangeSet.empty()
        removed_elements = 0
        removed_functions = 0

        structural = lib.structural_ranges()

        if gpu is not None and gpu.remove_ranges:
            image = lib.fatbin
            if image is None:
                raise CompactionError(f"{lib.soname}: GPU result without fatbin")
            removed_gpu = gpu.remove_ranges
            if structural & removed_gpu:
                raise CompactionError(
                    f"{lib.soname}: GPU removal overlaps structural ranges"
                )
            removed_index = set(gpu.removed_element_indices().tolist())
            payload_holes: list[tuple[int, int]] = []
            flag_offsets: list[int] = []
            flag_words: list[bytes] = []
            for element in image.elements():
                if element.index not in removed_index:
                    continue
                # Zero the cubin payload, keep the header walkable, flag it.
                payload_holes.append(
                    (
                        element.payload_offset,
                        element.payload_offset
                        + element.header.padded_payload_size,
                    )
                )
                flag_offsets.append(
                    element.header_offset + _ELEMENT_FLAGS_OFFSET
                )
                flag_words.append(
                    struct.pack(
                        "<I", element.header.flags | FC.ELEMENT_FLAG_REMOVED
                    )
                )
                removed_elements += 1
            if flag_offsets:
                # Flag words land at distinct header offsets and payload
                # ranges never overlap the headers, so batching both - the
                # flag patches through write_batch, the holes through
                # zero_ranges - is order-equivalent to the per-element
                # write/zero interleaving.
                data.write_batch(
                    np.asarray(flag_offsets, dtype=np.int64), flag_words
                )
                holes = np.asarray(payload_holes, dtype=np.int64)
                data.zero_ranges(RangeSet.from_arrays(holes[:, 0], holes[:, 1]))

        if cpu is not None and cpu.remove_ranges:
            removed_cpu = cpu.remove_ranges
            if structural & removed_cpu:
                raise CompactionError(
                    f"{lib.soname}: CPU removal overlaps structural ranges"
                )
            data.zero_ranges(removed_cpu)
            removed_functions = cpu.removed_functions

        if clock is not None:
            processed = removed_cpu.total() + removed_gpu.total()
            clock.advance(processed / self.costs.compact_bandwidth)

        new_lib = parse_shared_library(data, lib.soname, lib.proprietary)
        new_lib.tags.update(lib.tags)
        new_lib.tags["debloated_from"] = lib.soname
        new_lib.tags["removed_bytes_total"] = (
            removed_cpu.total() + removed_gpu.total()
        )
        if cpu is not None:
            mask = np.ones(len(lib.symtab), dtype=bool)
            if cpu.used_indices.size:
                mask[cpu.used_indices] = False
            # Non-function symbols (if any) are never removed.
            mask &= lib.symtab.function_mask()
            new_lib.tags["removed_function_mask"] = mask

        if validate:
            findings = validate_shared_library(new_lib)
            errors = [f for f in findings if f.severity == "error"]
            if errors:
                raise CompactionError(
                    f"{lib.soname}: compaction broke the library: "
                    + "; ".join(f.message for f in errors)
                )

        return DebloatedLibrary(
            lib=new_lib,
            original=lib,
            removed_cpu_ranges=removed_cpu,
            removed_gpu_ranges=removed_gpu,
            removed_elements=removed_elements,
            removed_functions=removed_functions,
        )


def exact_kernel_removal(
    debloated: DebloatedLibrary, used_kernels: frozenset[str]
) -> SharedLibrary:
    """ABLATION: additionally remove unused kernels *inside* retained cubins.

    The paper's locator deliberately retains whole elements so GPU-launching
    kernels (invisible to the detector) survive.  This ablation shows why:
    it removes every kernel whose name the detector did not record -
    including the device-side children of used kernels - and the workload
    then fails at launch with a broken kernel-call graph
    (``bench_ablation_granularity``).
    """
    lib = debloated.lib.copy()
    lib.tags = dict(debloated.lib.tags)
    image = lib.fatbin
    removed: dict[int, set[int]] = {}
    if image is not None:
        for element in image.elements():
            if element.header.flags & FC.ELEMENT_FLAG_REMOVED:
                continue
            try:
                cubin = element.cubin
            except Exception:  # noqa: BLE001 - zeroed payloads are skipped
                continue
            holes = {
                i for i, name in enumerate(cubin.names)
                if name not in used_kernels
            }
            if holes:
                removed[element.index] = holes
    lib.tags["removed_kernels"] = removed
    return lib

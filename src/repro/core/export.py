"""Report serialization: JSON export for dashboards/CI consumption.

``report_to_dict`` flattens a :class:`WorkloadDebloatReport` into plain
JSON-serializable types (the exact numbers the paper's tables print), so a
deployment pipeline can gate on e.g. "file reduction >= 40%" or archive
per-library reductions next to the debloated artifacts.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.report import LibraryReduction, WorkloadDebloatReport


def library_to_dict(lib: LibraryReduction) -> dict[str, Any]:
    return {
        "soname": lib.soname,
        "file_size": lib.file_size,
        "file_size_after": lib.file_size_after,
        "file_reduction_pct": round(lib.file_reduction_pct, 2),
        "cpu_size": lib.cpu_size,
        "cpu_size_after": lib.cpu_size_after,
        "cpu_reduction_pct": round(lib.cpu_reduction_pct, 2),
        "functions": lib.n_functions,
        "functions_after": lib.n_functions_after,
        "function_reduction_pct": round(lib.function_reduction_pct, 2),
        "gpu_size": lib.gpu_size,
        "gpu_size_after": lib.gpu_size_after,
        "gpu_reduction_pct": round(lib.gpu_reduction_pct, 2),
        "elements": lib.n_elements,
        "elements_after": lib.n_elements_after,
        "element_reduction_pct": round(lib.element_reduction_pct, 2),
    }


def report_to_dict(report: WorkloadDebloatReport) -> dict[str, Any]:
    """Flatten a debloat report (library rows + totals + runtime + timing)."""
    reasons = {
        reason.value: round(share, 2)
        for reason, share in report.removal_reason_shares().items()
    }
    out: dict[str, Any] = {
        "workload_id": report.workload_id,
        "device_arch": report.device_arch,
        "n_libraries": report.n_libraries,
        "totals": {
            "file_size": report.total_file_size,
            "file_size_after": report.total_file_size_after,
            "file_reduction_pct": round(report.file_reduction_pct, 2),
            "cpu_size": report.total_cpu_size,
            "cpu_reduction_pct": round(report.cpu_reduction_pct, 2),
            "functions": report.total_functions,
            "function_reduction_pct": round(report.function_reduction_pct, 2),
            "gpu_size": report.total_gpu_size,
            "gpu_reduction_pct": round(report.gpu_reduction_pct, 2),
            "elements": report.total_elements,
            "element_reduction_pct": round(report.element_reduction_pct, 2),
        },
        "removal_reasons_pct": reasons,
        "timing_s": {
            "kernel_detection_run": round(report.timing.kernel_detection_run_s, 3),
            "cpu_profiling_run": round(report.timing.cpu_profiling_run_s, 3),
            "locate": round(report.timing.locate_s, 3),
            "compact": round(report.timing.compact_s, 3),
            "total": round(report.timing.total_s, 3),
        },
        "libraries": [library_to_dict(lib) for lib in report.libraries],
    }
    if report.verification is not None:
        out["verification"] = {
            "ok": report.verification.ok,
            "error": report.verification.error,
        }
    if report.debloated_run is not None:
        base, after = report.baseline, report.debloated_run
        out["runtime"] = {
            "execution_time_s": [
                round(base.execution_time_s, 3),
                round(after.execution_time_s, 3),
            ],
            "peak_cpu_mem_bytes": [
                base.peak_cpu_mem_bytes, after.peak_cpu_mem_bytes
            ],
            "peak_gpu_mem_bytes": [
                base.peak_gpu_mem_bytes, after.peak_gpu_mem_bytes
            ],
        }
    return out


def report_to_json(report: WorkloadDebloatReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)

"""Kernel detector (paper §3.1).

The detector subscribes to the ``cuModuleGetFunction`` CUPTI callback site.
Because the driver calls that function exactly once per kernel name - no
matter how many times the kernel launches - interception cost scales with
the number of *distinct* kernels, not with launch count.  That is the
paper's headline overhead result (§4.6): ~41% first-run overhead versus
NSys's ~126%, with the gap growing for longer workloads.

The detector records *CPU-launching* kernels only; GPU-launching kernels
never pass through ``cuModuleGetFunction`` and are recovered later by the
locator's whole-cubin retention (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.cupti import CallbackInfo, CallbackSite


@dataclass
class KernelDetector:
    """CUPTI subscriber recording used kernel names per library."""

    costs: CostModel = DEFAULT_COSTS
    sites: frozenset[CallbackSite] = frozenset({CallbackSite.CU_MODULE_GET_FUNCTION})
    _used: dict[str, set[str]] = field(default_factory=dict)
    interceptions: int = 0

    def cost_per_event(self, site: CallbackSite) -> float:
        return self.costs.detector_callback

    def on_event(self, info: CallbackInfo) -> None:
        if info.library is None or info.kernel is None:
            return
        self._used.setdefault(info.library, set()).add(info.kernel)
        self.interceptions += info.count

    # -- results ------------------------------------------------------------------

    def used_kernels(self) -> dict[str, frozenset[str]]:
        """Per-library sets of detected CPU-launching kernel names."""
        return {soname: frozenset(names) for soname, names in self._used.items()}

    def used_kernels_for(self, soname: str) -> frozenset[str]:
        return frozenset(self._used.get(soname, ()))

    def total_detected(self) -> int:
        return sum(len(v) for v in self._used.values())

    def clear(self) -> None:
        self._used.clear()
        self.interceptions = 0

"""Versioned serialization of the debloat-report object graph.

The disk tier of the pipeline cache (``repro.experiments.diskcache``) has to
persist :class:`~repro.core.report.WorkloadDebloatReport` objects across
processes, which means the whole report graph - library reductions, locate
results with their :class:`~repro.core.locate.ElementDecision` lists and
NumPy-backed :class:`~repro.utils.intervals.RangeSet` ranges, run metrics
with per-library used-function arrays, timings, and the verification result
- needs a stable, versioned wire form.  None of those dataclasses know how
to serialize themselves; this module is the one place that does.

Two layers:

* :func:`to_payload` / :func:`from_payload` - lossless conversion between a
  report and a *payload tree*: nested dicts/lists of JSON scalars plus raw
  ``numpy.ndarray`` leaves.  The payload carries ``schema`` =
  :data:`SCHEMA_VERSION`; ``from_payload`` refuses any other version with
  :class:`~repro.errors.CacheSchemaError`.

* :func:`dumps` / :func:`loads` - a compact binary container for a payload:
  a fixed magic + version prefix, a JSON header in which every array is
  replaced by an index placeholder, the raw array bytes concatenated, and a
  trailing CRC32 over everything before it.  ``loads`` classifies every
  failure mode as :class:`~repro.errors.CacheDecodeError` (truncation,
  garbage, bad CRC) or :class:`~repro.errors.CacheSchemaError` (version
  skew) so cache readers can treat both as a miss, never a crash.

:func:`stable_digest` hashes arbitrary frozen-identity tuples (the pipeline
cache key plus the framework-build fingerprint) into a hex string that is
stable across processes and Python builds - unlike ``hash()``, which is
salted per process.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any

import numpy as np

from repro.core.locate import ElementDecision, LocateResult, RemovalReason
from repro.core.report import (
    DebloatTiming,
    LibraryReduction,
    WorkloadDebloatReport,
)
from repro.core.verify import VerificationResult
from repro.errors import CacheDecodeError, CacheSchemaError
from repro.utils.intervals import RangeSet
from repro.workloads.metrics import RunMetrics

#: Bump on ANY change to the payload layout; readers treat other versions as
#: cache misses (the entry is recomputed and overwritten, never migrated).
#: v2: ``DebloatTiming.nsys_traced_run_s`` + NSys record counters.
SCHEMA_VERSION = 2

#: Container magic: "Repro Debloat-report Binary Container".
MAGIC = b"RDBC"

#: Payload kind of a full :class:`WorkloadDebloatReport`.
REPORT_KIND = "workload_debloat_report"

_HEADER = struct.Struct("<4sII")  # magic, schema version, JSON header length
_CRC = struct.Struct("<I")


# ---------------------------------------------------------------------------
# payload layer: report graph <-> dict/list/scalar/ndarray tree
# ---------------------------------------------------------------------------


def _rangeset_to_payload(rs: RangeSet) -> dict[str, Any]:
    return {
        "starts": np.asarray(rs.starts, dtype=np.int64),
        "stops": np.asarray(rs.stops, dtype=np.int64),
    }


def _rangeset_from_payload(p: dict[str, Any]) -> RangeSet:
    return RangeSet.from_arrays(p["starts"], p["stops"])


def _decision_to_payload(d: ElementDecision) -> dict[str, Any]:
    return {
        "index": d.index,
        "sm_arch": d.sm_arch,
        "size": d.size,
        "kernel_count": d.kernel_count,
        "retained": d.retained,
        "reason": None if d.reason is None else d.reason.name,
        "used_entry_kernels": list(d.used_entry_kernels),
    }


def _decision_from_payload(p: dict[str, Any]) -> ElementDecision:
    return ElementDecision(
        index=int(p["index"]),
        sm_arch=int(p["sm_arch"]),
        size=int(p["size"]),
        kernel_count=int(p["kernel_count"]),
        retained=bool(p["retained"]),
        reason=None if p["reason"] is None else RemovalReason[p["reason"]],
        used_entry_kernels=tuple(p["used_entry_kernels"]),
    )


def _locate_to_payload(res: LocateResult) -> dict[str, Any]:
    return {
        "soname": res.soname,
        "device_arch": res.device_arch,
        "decisions": [_decision_to_payload(d) for d in res.decisions],
        "retain_ranges": _rangeset_to_payload(res.retain_ranges),
        "remove_ranges": _rangeset_to_payload(res.remove_ranges),
    }


def _locate_from_payload(p: dict[str, Any]) -> LocateResult:
    return LocateResult(
        soname=p["soname"],
        device_arch=int(p["device_arch"]),
        decisions=[_decision_from_payload(d) for d in p["decisions"]],
        retain_ranges=_rangeset_from_payload(p["retain_ranges"]),
        remove_ranges=_rangeset_from_payload(p["remove_ranges"]),
    )


def _metrics_to_payload(m: RunMetrics | None) -> dict[str, Any] | None:
    if m is None:
        return None
    return {
        "workload_id": m.workload_id,
        "execution_time_s": m.execution_time_s,
        "peak_cpu_mem_bytes": m.peak_cpu_mem_bytes,
        "peak_gpu_mem_bytes": m.peak_gpu_mem_bytes,
        "output_digest": m.output_digest,
        "used_kernels": {
            soname: sorted(names) for soname, names in m.used_kernels.items()
        },
        "used_functions": {
            soname: np.asarray(idx, dtype=np.int64)
            for soname, idx in m.used_functions.items()
        },
        "counters": {k: int(v) for k, v in m.counters.items()},
    }


def _metrics_from_payload(p: dict[str, Any] | None) -> RunMetrics | None:
    if p is None:
        return None
    return RunMetrics(
        workload_id=p["workload_id"],
        execution_time_s=float(p["execution_time_s"]),
        peak_cpu_mem_bytes=int(p["peak_cpu_mem_bytes"]),
        peak_gpu_mem_bytes=int(p["peak_gpu_mem_bytes"]),
        output_digest=p["output_digest"],
        used_kernels={
            soname: frozenset(names)
            for soname, names in p["used_kernels"].items()
        },
        used_functions={
            soname: np.asarray(idx, dtype=np.int64)
            for soname, idx in p["used_functions"].items()
        },
        counters=dict(p["counters"]),
    )


def _library_to_payload(lib: LibraryReduction) -> dict[str, Any]:
    return {
        "soname": lib.soname,
        "file_size": lib.file_size,
        "cpu_size": lib.cpu_size,
        "n_functions": lib.n_functions,
        "gpu_size": lib.gpu_size,
        "n_elements": lib.n_elements,
        "file_size_after": lib.file_size_after,
        "cpu_size_after": lib.cpu_size_after,
        "n_functions_after": lib.n_functions_after,
        "gpu_size_after": lib.gpu_size_after,
        "n_elements_after": lib.n_elements_after,
    }


def _library_from_payload(p: dict[str, Any]) -> LibraryReduction:
    return LibraryReduction(
        soname=p["soname"],
        **{k: int(v) for k, v in p.items() if k != "soname"},
    )


def _timing_to_payload(t: DebloatTiming) -> dict[str, Any]:
    return {
        "kernel_detection_run_s": t.kernel_detection_run_s,
        "cpu_profiling_run_s": t.cpu_profiling_run_s,
        "locate_s": t.locate_s,
        "compact_s": t.compact_s,
        "instrumented_run_s": t.instrumented_run_s,
        "nsys_traced_run_s": t.nsys_traced_run_s,
    }


def _verification_to_payload(v: VerificationResult | None) -> dict | None:
    if v is None:
        return None
    return {
        "ok": v.ok,
        "original_digest": v.original_digest,
        "debloated_digest": v.debloated_digest,
        "error": v.error,
        "debloated_metrics": _metrics_to_payload(v.debloated_metrics),
    }


def _verification_from_payload(p: dict | None) -> VerificationResult | None:
    if p is None:
        return None
    return VerificationResult(
        ok=bool(p["ok"]),
        original_digest=p["original_digest"],
        debloated_digest=p["debloated_digest"],
        error=p["error"],
        debloated_metrics=_metrics_from_payload(p["debloated_metrics"]),
    )


def to_payload(report: WorkloadDebloatReport) -> dict[str, Any]:
    """Flatten a report into a versioned tree of plain data + ndarrays."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "workload_id": report.workload_id,
        "device_arch": report.device_arch,
        "libraries": [_library_to_payload(lib) for lib in report.libraries],
        "locate_results": {
            soname: _locate_to_payload(res)
            for soname, res in report.locate_results.items()
        },
        "timing": _timing_to_payload(report.timing),
        "baseline": _metrics_to_payload(report.baseline),
        "detection": _metrics_to_payload(report.detection),
        "debloated_run": _metrics_to_payload(report.debloated_run),
        "verification": _verification_to_payload(report.verification),
    }


def from_payload(payload: dict[str, Any]) -> WorkloadDebloatReport:
    """Rebuild a report from :func:`to_payload` output.

    Raises :class:`CacheSchemaError` on version skew and
    :class:`CacheDecodeError` on any structural problem.
    """
    try:
        schema = payload["schema"]
    except (TypeError, KeyError) as exc:
        raise CacheDecodeError("payload has no schema version") from exc
    if schema != SCHEMA_VERSION:
        raise CacheSchemaError(
            f"payload schema {schema!r} != supported {SCHEMA_VERSION}"
        )
    kind = payload.get("kind", REPORT_KIND)
    if kind != REPORT_KIND:
        raise CacheDecodeError(f"payload kind {kind!r} is not a report")
    try:
        return WorkloadDebloatReport(
            workload_id=payload["workload_id"],
            device_arch=int(payload["device_arch"]),
            libraries=[
                _library_from_payload(p) for p in payload["libraries"]
            ],
            locate_results={
                soname: _locate_from_payload(p)
                for soname, p in payload["locate_results"].items()
            },
            timing=DebloatTiming(
                **{k: float(v) for k, v in payload["timing"].items()}
            ),
            baseline=_metrics_from_payload(payload["baseline"]),
            detection=_metrics_from_payload(payload["detection"]),
            debloated_run=_metrics_from_payload(payload["debloated_run"]),
            verification=_verification_from_payload(payload["verification"]),
        )
    except CacheDecodeError:
        raise
    except Exception as exc:  # malformed tree of any shape -> decode error
        raise CacheDecodeError(f"malformed report payload: {exc}") from exc


# ---------------------------------------------------------------------------
# container layer: payload tree <-> bytes
# ---------------------------------------------------------------------------


def _pack_tree(node: Any, arrays: list[np.ndarray]) -> Any:
    """Replace ndarray leaves with index placeholders, collecting them."""
    if isinstance(node, np.ndarray):
        arrays.append(np.ascontiguousarray(node))
        return {"__ndarray__": len(arrays) - 1}
    if isinstance(node, dict):
        return {k: _pack_tree(v, arrays) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_pack_tree(v, arrays) for v in node]
    if isinstance(node, np.integer):
        return int(node)
    if isinstance(node, np.floating):
        return float(node)
    return node


def _unpack_tree(node: Any, arrays: list[np.ndarray]) -> Any:
    if isinstance(node, dict):
        if set(node) == {"__ndarray__"}:
            return arrays[node["__ndarray__"]]
        return {k: _unpack_tree(v, arrays) for k, v in node.items()}
    if isinstance(node, list):
        return [_unpack_tree(v, arrays) for v in node]
    return node


def dumps(report: WorkloadDebloatReport) -> bytes:
    """Serialize a report into the compact binary container."""
    return payload_dumps(to_payload(report))


def payload_dumps(payload: dict[str, Any]) -> bytes:
    arrays: list[np.ndarray] = []
    tree = _pack_tree(payload, arrays)
    header = json.dumps(
        {
            "payload": tree,
            "arrays": [
                {"dtype": a.dtype.str, "shape": list(a.shape)} for a in arrays
            ],
        },
        separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")
    parts = [_HEADER.pack(MAGIC, SCHEMA_VERSION, len(header)), header]
    parts.extend(a.tobytes() for a in arrays)
    body = b"".join(parts)
    return body + _CRC.pack(zlib.crc32(body))


def loads(data: bytes) -> WorkloadDebloatReport:
    """Deserialize a container; every failure is a :class:`CacheError`."""
    return from_payload(payload_loads(data))


def value_dumps(value: Any, kind: str) -> bytes:
    """Serialize an arbitrary payload tree under a caller-chosen kind.

    The experiments' cached-value tier uses this for results that are not
    full reports: instrumented-run metrics + tool counters, ablation
    outcomes.  ``value`` may contain dicts/lists/scalars and ndarray
    leaves; tuples come back as lists.
    """
    return payload_dumps(
        {"schema": SCHEMA_VERSION, "kind": kind, "value": value}
    )


def value_loads(data: bytes, kind: str) -> Any:
    """Inverse of :func:`value_dumps`; kind mismatch is a decode error."""
    payload = payload_loads(data)
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise CacheSchemaError(
            f"payload schema {schema!r} != supported {SCHEMA_VERSION}"
        )
    if payload.get("kind") != kind:
        raise CacheDecodeError(
            f"payload kind {payload.get('kind')!r} != expected {kind!r}"
        )
    return payload["value"]


#: Public aliases: the cached-value tier persists bare RunMetrics too, the
#: process-sharded locate/compact fan-out ships LocateResults, and the
#: store-image / remote-shard payloads reuse the per-object pieces.
metrics_to_payload = _metrics_to_payload
metrics_from_payload = _metrics_from_payload
locate_to_payload = _locate_to_payload
locate_from_payload = _locate_from_payload
library_to_payload = _library_to_payload
library_from_payload = _library_from_payload
verification_to_payload = _verification_to_payload
verification_from_payload = _verification_from_payload


# ---------------------------------------------------------------------------
# workload-spec payloads: rebuildable identity, not pickled objects
# ---------------------------------------------------------------------------


def spec_to_payload(spec) -> dict[str, Any]:
    """Wire form of a :class:`~repro.workloads.spec.WorkloadSpec`.

    Ships the *identity* (model/dataset names plus the scalar knobs), not
    the nested spec objects: the receiving side rebuilds through the model
    and dataset registries, so a payload round-trip yields a spec that is
    ``==`` to the original (frozen dataclasses over registry-interned
    parts) and hits the same usage-cache keys.
    """
    return {
        "framework": spec.framework,
        "operation": spec.operation,
        "model": spec.model.name,
        "dataset": spec.dataset.name,
        "batch_size": spec.batch_size,
        "epochs": spec.epochs,
        "device_name": spec.device_name,
        "world_size": spec.world_size,
        "loading_mode": spec.loading_mode.value,
    }


def spec_from_payload(p: dict[str, Any]):
    from repro.cuda.driver import LoadingMode
    from repro.workloads.datasets import get_dataset
    from repro.workloads.models import get_model
    from repro.workloads.spec import WorkloadSpec

    return WorkloadSpec(
        framework=p["framework"],
        operation=p["operation"],
        model=get_model(p["model"]),
        dataset=get_dataset(p["dataset"]),
        batch_size=int(p["batch_size"]),
        epochs=int(p["epochs"]),
        device_name=p["device_name"],
        world_size=int(p["world_size"]),
        loading_mode=LoadingMode(p["loading_mode"]),
    )


def multi_report_to_payload(report) -> dict[str, Any]:
    """Wire form of a :class:`~repro.core.debloat.MultiWorkloadReport`."""
    return {
        "workload_ids": list(report.workload_ids),
        "libraries": [_library_to_payload(lib) for lib in report.libraries],
        "verifications": [
            _verification_to_payload(v) for v in report.verifications
        ],
        "marginal_new_kernels": [
            int(n) for n in report.marginal_new_kernels
        ],
    }


def multi_report_from_payload(p: dict[str, Any]):
    from repro.core.debloat import MultiWorkloadReport

    return MultiWorkloadReport(
        workload_ids=list(p["workload_ids"]),
        libraries=[_library_from_payload(lib) for lib in p["libraries"]],
        verifications=[
            _verification_from_payload(v) for v in p["verifications"]
        ],
        marginal_new_kernels=[int(n) for n in p["marginal_new_kernels"]],
    )


# ---------------------------------------------------------------------------
# process-shard payloads: SparseFile / DebloatedLibrary across workers
# ---------------------------------------------------------------------------

#: Payload kinds of the process-sharded locate/compact fan-out
#: (:mod:`repro.core.debloat`): a shard task shipped to a worker process and
#: the per-library results shipped back.
SHARD_TASK_KIND = "locate_shard_task"
SHARD_RESULT_KIND = "locate_shard_result"


def sparsefile_to_payload(sf) -> dict[str, Any]:
    """Exact wire form of a :class:`~repro.utils.sparsefile.SparseFile`.

    Extent starts/ends plus one concatenated chunk blob: rebuilding writes
    the chunks back in order, and the extent invariant (sorted, disjoint,
    non-adjacent) guarantees the rebuilt file has identical structure, not
    just identical reads.
    """
    extents = sf.extents()
    starts = np.asarray(extents.starts, dtype=np.int64)
    stops = np.asarray(extents.stops, dtype=np.int64)
    blob = b"".join(
        sf.read(int(s), int(e - s)) for s, e in zip(starts, stops)
    )
    return {
        "logical_size": sf.logical_size,
        "starts": starts,
        "stops": stops,
        "blob": np.frombuffer(blob, dtype=np.uint8),
    }


def sparsefile_from_payload(p: dict[str, Any]):
    from repro.utils.sparsefile import SparseFile

    sf = SparseFile(int(p["logical_size"]))
    blob = p["blob"].tobytes()
    offset = 0
    for s, e in zip(p["starts"].tolist(), p["stops"].tolist()):
        length = e - s
        sf.write(s, blob[offset : offset + length])
        offset += length
    return sf


def debloated_to_payload(d) -> dict[str, Any]:
    """Wire form of a :class:`~repro.core.compact.DebloatedLibrary`.

    Ships the *compacted* bytes plus the removal record; the original
    library (typically hundreds of MB of generated content the parent
    already holds) is reattached on the other side by
    :func:`debloated_from_payload`, never serialized.
    """
    lib = d.lib
    mask = lib.tags.get("removed_function_mask")
    return {
        "soname": d.soname,
        "proprietary": lib.proprietary,
        "data": sparsefile_to_payload(lib.data),
        "removed_cpu_ranges": _rangeset_to_payload(d.removed_cpu_ranges),
        "removed_gpu_ranges": _rangeset_to_payload(d.removed_gpu_ranges),
        "removed_elements": d.removed_elements,
        "removed_functions": d.removed_functions,
        "removed_bytes_total": int(lib.tags["removed_bytes_total"]),
        "removed_function_mask": (
            None if mask is None else np.asarray(mask, dtype=bool)
        ),
    }


def debloated_from_payload(p: dict[str, Any], original):
    """Rebuild a :class:`DebloatedLibrary` against the caller's original.

    Reproduces exactly what :meth:`~repro.core.compact.Compactor.compact`
    constructs: a freshly parsed library over the compacted bytes, tags
    inherited from the original plus the removal record.
    """
    from repro.core.compact import DebloatedLibrary
    from repro.elf.parser import parse_shared_library

    soname = p["soname"]
    if soname != original.soname:
        raise CacheDecodeError(
            f"shard result for {soname!r} paired with {original.soname!r}"
        )
    lib = parse_shared_library(
        sparsefile_from_payload(p["data"]), soname, bool(p["proprietary"])
    )
    lib.tags.update(original.tags)
    lib.tags["debloated_from"] = soname
    lib.tags["removed_bytes_total"] = int(p["removed_bytes_total"])
    if p["removed_function_mask"] is not None:
        lib.tags["removed_function_mask"] = p["removed_function_mask"]
    return DebloatedLibrary(
        lib=lib,
        original=original,
        removed_cpu_ranges=_rangeset_from_payload(p["removed_cpu_ranges"]),
        removed_gpu_ranges=_rangeset_from_payload(p["removed_gpu_ranges"]),
        removed_elements=int(p["removed_elements"]),
        removed_functions=int(p["removed_functions"]),
    )


# ---------------------------------------------------------------------------
# store images: a whole DebloatStore epoch as one payload
# ---------------------------------------------------------------------------

#: Payload kind of a full :class:`~repro.serving.store.DebloatStore` image
#: (usage unions, per-library decisions, kernel-usage indexes, debloated
#: library extents + bytes) - what snapshot export/import and the remote
#: shard push/pull protocol ship.
STORE_KIND = "debloat_store_image"


def store_to_payload(store) -> dict[str, Any]:
    """One consistent image of a store's committed epoch.

    Thin delegation to :meth:`~repro.serving.store.DebloatStore.export_state`
    (which captures under the admission lock); lives here so the wire
    format has one home alongside the other payload kinds.
    """
    return store.export_state()


def store_from_payload(
    payload: dict[str, Any],
    options=None,
    use_cache: bool = False,
    cache=None,
):
    """Rebuild a warm :class:`DebloatStore` from a store image.

    Regenerates the framework build the image names from the catalog
    (deterministic generation, *not* a workload run) and imports the
    image into a fresh store.  Raises
    :class:`~repro.errors.SnapshotSchemaError` on version skew and
    :class:`~repro.errors.SnapshotError` for an image without a catalog
    build key (hand-built frameworks must import via
    :meth:`DebloatStore.import_state` on a caller-constructed store).
    """
    from repro.errors import SnapshotError
    from repro.frameworks.catalog import get_framework
    from repro.serving.store import DebloatStore

    _check_store_payload(payload)
    build = payload.get("build")
    if build is None:
        raise SnapshotError(
            f"store image for {payload.get('framework')!r} has no catalog "
            f"build key; import it into an explicitly constructed store"
        )
    framework = get_framework(
        build["name"],
        scale=float(build["scale"]),
        archs=tuple(int(a) for a in build["archs"]),
    )
    store = DebloatStore(
        framework, options, use_cache=use_cache, cache=cache
    )
    store.import_state(payload)
    return store


def _check_store_payload(payload: dict[str, Any]) -> None:
    """Schema/kind gate shared by every store-image reader."""
    from repro.errors import SnapshotError, SnapshotSchemaError

    if not isinstance(payload, dict):
        raise SnapshotError("store image payload is not a mapping")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"store image schema {schema!r} != supported {SCHEMA_VERSION}"
        )
    if payload.get("kind") != STORE_KIND:
        raise SnapshotError(
            f"payload kind {payload.get('kind')!r} is not a store image"
        )


def payload_loads(data: bytes) -> dict[str, Any]:
    if len(data) < _HEADER.size + _CRC.size:
        raise CacheDecodeError(f"container truncated ({len(data)} bytes)")
    magic, version, header_len = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CacheDecodeError(f"bad magic {magic!r}")
    if version != SCHEMA_VERSION:
        raise CacheSchemaError(
            f"container schema {version} != supported {SCHEMA_VERSION}"
        )
    (crc,) = _CRC.unpack_from(data, len(data) - _CRC.size)
    body = data[: len(data) - _CRC.size]
    if zlib.crc32(body) != crc:
        raise CacheDecodeError("CRC mismatch (corrupt container)")
    try:
        header = json.loads(
            body[_HEADER.size : _HEADER.size + header_len].decode("utf-8")
        )
        arrays: list[np.ndarray] = []
        offset = _HEADER.size + header_len
        for meta in header["arrays"]:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            chunk = body[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise CacheDecodeError("array section truncated")
            arrays.append(np.frombuffer(chunk, dtype=dtype).reshape(shape))
            offset += nbytes
        if offset != len(body):
            raise CacheDecodeError(
                f"{len(body) - offset} trailing bytes after array section"
            )
        payload = _unpack_tree(header["payload"], arrays)
    except CacheDecodeError:
        raise
    except Exception as exc:
        raise CacheDecodeError(f"malformed container: {exc}") from exc
    if not isinstance(payload, dict):
        raise CacheDecodeError("container payload is not a mapping")
    return payload


# ---------------------------------------------------------------------------
# equality + stable digests
# ---------------------------------------------------------------------------


def payload_equal(a: Any, b: Any) -> bool:
    """Deep equality over payload trees, ndarray-aware (dtype + values)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(payload_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            payload_equal(x, y) for x, y in zip(a, b)
        )
    return type(a) is type(b) and a == b


def reports_equal(
    a: WorkloadDebloatReport, b: WorkloadDebloatReport
) -> bool:
    """Semantic report equality (dataclass ``==`` chokes on ndarray fields)."""
    return payload_equal(to_payload(a), to_payload(b))


def _feed(h, obj: Any) -> None:
    """Hash one node with an unambiguous type tag (order- and type-safe)."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode() + b";")
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + repr(float(obj)).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"S" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, (tuple, list)):
        h.update(b"T(")
        for item in obj:
            _feed(h, item)
        h.update(b")")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"U(")
        for item in sorted(obj, key=repr):
            _feed(h, item)
        h.update(b")")
    elif isinstance(obj, dict):
        h.update(b"D(")
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b")")
    elif isinstance(obj, np.ndarray):
        h.update(b"A" + obj.dtype.str.encode() + repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    else:
        _feed(h, repr(obj))


def stable_digest(*parts: Any) -> str:
    """A process-stable hex digest of arbitrary frozen-identity values.

    Equal values always produce equal digests across processes (no hash
    salting, no id()-dependence); any perturbation of any nested field
    produces a different digest.  Used to key disk-cache entries.
    """
    h = hashlib.blake2b(digest_size=20)
    _feed(h, parts)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# content-addressed blocks: chunking + block-aware store images
# ---------------------------------------------------------------------------

#: Chunk granularity of the content-addressed block layer
#: (:mod:`repro.storage`).  Pieces split at *absolute* multiples of this
#: size, so byte-identical extents at equal file offsets chunk into
#: byte-identical pieces regardless of which shard ingests them.
DEFAULT_BLOCK_SIZE = 64 * 1024

#: Payload kind of a snapshot's shared block pool: every unique block
#: referenced by the snapshot's shard images, written exactly once.
BLOCK_POOL_KIND = "block_pool"


def block_digest(data: bytes) -> str:
    """Content address of one block: blake2b over exactly its bytes."""
    return hashlib.blake2b(bytes(data), digest_size=20).hexdigest()


def iter_block_pieces(start: int, stop: int, block_size: int):
    """Split ``[start, stop)`` at absolute multiples of ``block_size``.

    Yields ``(piece_start, piece_stop)`` pairs covering the range exactly.
    Alignment to absolute offsets (not extent-relative ones) is what makes
    chunking content-addressable across shards: two extents holding the
    same bytes at the same file offset always produce the same pieces.
    """
    pos = int(start)
    stop = int(stop)
    while pos < stop:
        boundary = (pos // block_size + 1) * block_size
        nxt = boundary if boundary < stop else stop
        yield pos, nxt
        pos = nxt


def payload_is_deflated(payload: dict[str, Any]) -> bool:
    """True if any debloated entry references blocks instead of a blob."""
    return any(
        "piece_digests" in entry["data"]
        for entry in payload.get("debloated", {}).values()
    )


def deflate_store_payload(
    payload: dict[str, Any],
    pool: dict[str, bytes],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> dict[str, Any]:
    """Block-aware form of a store image: blobs become digest lists.

    Each debloated entry's ``data.blob`` is replaced by ``piece_digests``
    (one digest per offset-aligned piece, in extent order) and the piece
    bytes land in ``pool`` keyed by digest - shared across every shard of
    a snapshot, so duplicate content is written once.  Everything else in
    the image (extent arrays included) passes through untouched, which is
    what lets :func:`inflate_store_payload` reconstruct the original
    payload byte-exactly.
    """
    _check_store_payload(payload)
    out = dict(payload)
    debloated: dict[str, Any] = {}
    for soname, entry in payload["debloated"].items():
        data = entry["data"]
        blob = data["blob"].tobytes()
        digests: list[str] = []
        offset = 0
        for s, e in zip(data["starts"].tolist(), data["stops"].tolist()):
            for ps, pe in iter_block_pieces(s, e, block_size):
                piece = blob[offset : offset + (pe - ps)]
                digest = block_digest(piece)
                pool.setdefault(digest, piece)
                digests.append(digest)
                offset += pe - ps
        new_data = dict(data)
        del new_data["blob"]
        new_data["block_size"] = int(block_size)
        new_data["piece_digests"] = digests
        new_entry = dict(entry)
        new_entry["data"] = new_data
        debloated[soname] = new_entry
    out["debloated"] = debloated
    return out


def inflate_store_payload(
    payload: dict[str, Any], pool: dict[str, bytes]
) -> dict[str, Any]:
    """Invert :func:`deflate_store_payload` byte-exactly.

    ``inflate(deflate(p, pool), pool)`` reproduces ``p`` such that
    ``payload_dumps`` of both are identical - the property the durability
    byte-identity contract (``bench_durability``) rides on.  A digest the
    pool lacks, or a piece whose length disagrees with the extent arrays,
    raises :class:`~repro.errors.SnapshotError`.
    """
    from repro.errors import SnapshotError

    out = dict(payload)
    debloated: dict[str, Any] = {}
    for soname, entry in payload.get("debloated", {}).items():
        data = entry["data"]
        if "piece_digests" not in data:
            debloated[soname] = entry
            continue
        block_size = int(data["block_size"])
        pieces: list[bytes] = []
        digests = iter(data["piece_digests"])
        for s, e in zip(data["starts"].tolist(), data["stops"].tolist()):
            for ps, pe in iter_block_pieces(s, e, block_size):
                digest = next(digests, None)
                if digest is None:
                    raise SnapshotError(
                        f"{soname}: block manifest shorter than extents"
                    )
                piece = pool.get(digest)
                if piece is None:
                    raise SnapshotError(
                        f"{soname}: block {digest} missing from pool"
                    )
                if len(piece) != pe - ps:
                    raise SnapshotError(
                        f"{soname}: block {digest} is {len(piece)} bytes, "
                        f"extents expect {pe - ps}"
                    )
                pieces.append(piece)
        if next(digests, None) is not None:
            raise SnapshotError(
                f"{soname}: block manifest longer than extents"
            )
        blob = b"".join(pieces)
        new_data = {
            "logical_size": data["logical_size"],
            "starts": data["starts"],
            "stops": data["stops"],
            "blob": np.frombuffer(blob, dtype=np.uint8),
        }
        new_entry = dict(entry)
        new_entry["data"] = new_data
        debloated[soname] = new_entry
    out["debloated"] = debloated
    return out


def block_pool_to_payload(pool: dict[str, bytes]) -> dict[str, Any]:
    """One RDBC container holding every pool block, sorted by digest.

    Digest-sorted layout makes re-exporting an unchanged federation write
    a byte-identical pool file (the snapshot determinism contract).
    """
    digests = sorted(pool)
    lengths = np.asarray([len(pool[d]) for d in digests], dtype=np.int64)
    blob = b"".join(pool[d] for d in digests)
    return {
        "schema": SCHEMA_VERSION,
        "kind": BLOCK_POOL_KIND,
        "digests": digests,
        "lengths": lengths,
        "blob": np.frombuffer(blob, dtype=np.uint8),
    }


def block_pool_from_payload(p: dict[str, Any]) -> dict[str, bytes]:
    """Decode a pool container, re-verifying every block's digest."""
    from repro.errors import SnapshotError, SnapshotSchemaError

    if not isinstance(p, dict) or p.get("kind") != BLOCK_POOL_KIND:
        raise SnapshotError(
            f"payload kind {p.get('kind')!r} is not a block pool"
        )
    if p.get("schema") != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"block pool schema {p.get('schema')!r} != supported "
            f"{SCHEMA_VERSION}"
        )
    blob = p["blob"].tobytes()
    pool: dict[str, bytes] = {}
    offset = 0
    for digest, length in zip(p["digests"], p["lengths"].tolist()):
        piece = blob[offset : offset + length]
        if len(piece) != length:
            raise SnapshotError("block pool blob truncated")
        if block_digest(piece) != digest:
            raise SnapshotError(
                f"block pool entry {digest} fails digest re-verification"
            )
        pool[digest] = piece
        offset += length
    if offset != len(blob):
        raise SnapshotError(
            f"{len(blob) - offset} trailing bytes after block pool"
        )
    return pool

"""Versioned on-disk snapshots: a federation's store images in a directory.

Snapshot export is how a replica (or a crashed remote shard) comes up warm
with **zero** workload runs: every shard's committed epoch is written as
one RDBC container (:data:`~repro.core.serialize.STORE_KIND`, CRC-checked
by the container itself) next to a ``MANIFEST.json`` that records the
snapshot schema, each shard's framework/fingerprint/generation, and a
process-stable digest of each container's bytes.  Import verifies the
digest before decoding, so a torn or tampered file surfaces as
:class:`~repro.errors.SnapshotError` rather than a half-imported store.

Since schema 2 a snapshot is **block-deflated**: every shard's payload
blobs are chunked into offset-aligned content-addressed pieces
(:func:`~repro.core.serialize.deflate_store_payload`), the deduped pieces
land once in a shared ``blocks.rdbc`` pool file, and each shard container
stores digest lists instead of bytes.  Import inflates back to the
original self-contained payload tree byte-exactly, so the durability
byte-identity contract is untouched while cross-shard duplicate content
is written to disk exactly once.

Write ordering makes export crash-safe without locks: the block pool is
written first, then the shard containers that reference it (each through
the durable atomic-write helper - temp file, ``fsync``, ``os.replace``,
parent-directory ``fsync``), the manifest last, also atomically.  A
reader therefore either sees the previous complete snapshot or the new
one - never a manifest pointing at missing or partial files - and (with
fsync enabled) what it sees survives power loss.
Readers call the ``snapshot.read`` fault site, so the fault harness can
rehearse corrupt/missing snapshots deterministically.

When a shard has a write-ahead log (:mod:`repro.serving.wal`), its
manifest entry also records the ``wal_seq`` watermark: the last WAL
record reflected in the image.  Recovery replays only records past the
watermark, which is what makes checkpoint-then-truncate crash-safe.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from repro.core.serialize import (
    SCHEMA_VERSION,
    _check_store_payload,
    block_pool_from_payload,
    block_pool_to_payload,
    deflate_store_payload,
    inflate_store_payload,
    payload_dumps,
    payload_is_deflated,
    payload_loads,
    stable_digest,
)
from repro.errors import (
    CacheDecodeError,
    CacheSchemaError,
    SnapshotError,
    SnapshotSchemaError,
)
from repro.testing import faults
from repro.utils.atomicio import atomic_write_bytes

#: Bump on any change to the manifest layout or file naming.
SNAPSHOT_SCHEMA = 2

#: Schemas this reader accepts.  v1 snapshots carry self-contained shard
#: containers; v2 shard containers are block-deflated and reference the
#: shared pool file, so the two inflate to identical payload trees.
SUPPORTED_SNAPSHOT_SCHEMAS = (1, SNAPSHOT_SCHEMA)

MANIFEST_NAME = "MANIFEST.json"

#: The shared content-addressed block pool: every deduped piece of every
#: shard's store image, written once per snapshot.
BLOCKS_NAME = "blocks.rdbc"


def shard_filename(framework: str) -> str:
    return f"shard--{framework}.rdbc"


def _atomic_write(path: str, data: bytes) -> None:
    atomic_write_bytes(path, data)


def write_snapshot(
    directory: str,
    payloads: Mapping[str, dict],
    wal_seqs: Mapping[str, int] | None = None,
) -> dict:
    """Write one store image per framework + the manifest; returns it.

    ``payloads`` maps framework name -> a store-image payload tree
    (:meth:`~repro.serving.store.DebloatStore.export_state` output).
    Re-exporting an unchanged federation rewrites byte-identical files.
    ``wal_seqs`` optionally maps framework name -> the WAL watermark
    reflected in the image, recorded as the shard entry's ``wal_seq``
    (readers without a WAL ignore the extra key).
    """
    os.makedirs(directory, exist_ok=True)
    pool: dict[str, bytes] = {}
    deflated = {}
    for framework in sorted(payloads):
        payload = payloads[framework]
        _check_store_payload(payload)
        deflated[framework] = deflate_store_payload(payload, pool)
    # The pool is written before any shard container that references it:
    # a reader that sees a shard file always finds its blocks.
    pool_blob = payload_dumps(block_pool_to_payload(pool))
    _atomic_write(os.path.join(directory, BLOCKS_NAME), pool_blob)
    blocks_ref = {"file": BLOCKS_NAME, "digest": stable_digest(pool_blob)}
    shards = []
    for framework in sorted(payloads):
        blob = payload_dumps(deflated[framework])
        filename = shard_filename(framework)
        _atomic_write(os.path.join(directory, filename), blob)
        entry = {
            "framework": framework,
            "fingerprint": payloads[framework].get("fingerprint"),
            "generation": int(payloads[framework].get("generation", 0)),
            "file": filename,
            "bytes": len(blob),
            "digest": stable_digest(blob),
            "blocks": dict(blocks_ref),
        }
        if wal_seqs is not None and framework in wal_seqs:
            entry["wal_seq"] = int(wal_seqs[framework])
        shards.append(entry)
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "container_schema": SCHEMA_VERSION,
        "shards": shards,
    }
    _atomic_write(
        os.path.join(directory, MANIFEST_NAME),
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return manifest


def snapshot_exists(directory: str) -> bool:
    return os.path.isfile(os.path.join(directory, MANIFEST_NAME))


def read_manifest(directory: str) -> dict:
    """The snapshot's manifest; every failure is a :class:`SnapshotError`."""
    faults.check("snapshot.read")
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "rb") as fh:
            manifest = json.loads(fh.read().decode("utf-8"))
    except OSError as exc:
        raise SnapshotError(f"no snapshot manifest at {path}: {exc}") from exc
    except ValueError as exc:
        raise SnapshotError(f"snapshot manifest is not JSON: {exc}") from exc
    schema = manifest.get("schema") if isinstance(manifest, dict) else None
    if schema not in SUPPORTED_SNAPSHOT_SCHEMAS:
        raise SnapshotSchemaError(
            f"snapshot schema {schema!r} not in supported "
            f"{SUPPORTED_SNAPSHOT_SCHEMAS}"
        )
    if manifest.get("container_schema") != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"snapshot containers use schema "
            f"{manifest.get('container_schema')!r} != supported "
            f"{SCHEMA_VERSION}"
        )
    if not isinstance(manifest.get("shards"), list):
        raise SnapshotError("snapshot manifest has no shard list")
    return manifest


def read_block_pool(directory: str, ref: dict) -> dict[str, bytes]:
    """The shared block pool a shard entry references, digest-verified.

    ``ref`` is a shard entry's ``blocks`` mapping (``file`` + ``digest``).
    Every block's content digest is re-verified during decode, so a
    corrupt pool surfaces here rather than as a garbled store image.
    """
    faults.check("snapshot.read")
    path = os.path.join(directory, ref["file"])
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotError(
            f"snapshot block pool {path} unreadable: {exc}"
        ) from exc
    if stable_digest(blob) != ref.get("digest"):
        raise SnapshotError(
            f"snapshot block pool {ref['file']} digest mismatch (torn "
            f"write or tampering)"
        )
    try:
        payload = payload_loads(blob)
    except CacheSchemaError as exc:
        raise SnapshotSchemaError(str(exc)) from exc
    except CacheDecodeError as exc:
        raise SnapshotError(
            f"snapshot block pool {ref['file']} is corrupt: {exc}"
        ) from exc
    return block_pool_from_payload(payload)


def read_shard_payload(
    directory: str, entry: dict, pool: dict[str, bytes] | None = None
) -> dict:
    """One manifest entry's store image, digest-verified then decoded.

    A v2 entry's container is block-deflated; its blobs are rebuilt from
    the shared pool (loaded from the entry's ``blocks`` reference unless
    a caller that iterates many shards passes ``pool`` in), so the return
    value is always the original self-contained payload tree.
    """
    faults.check("snapshot.read")
    path = os.path.join(directory, entry["file"])
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotError(
            f"snapshot shard file {path} unreadable: {exc}"
        ) from exc
    if stable_digest(blob) != entry.get("digest"):
        raise SnapshotError(
            f"snapshot shard {entry['file']} digest mismatch (torn write "
            f"or tampering)"
        )
    try:
        payload = payload_loads(blob)
    except CacheSchemaError as exc:
        raise SnapshotSchemaError(str(exc)) from exc
    except CacheDecodeError as exc:
        raise SnapshotError(
            f"snapshot shard {entry['file']} is corrupt: {exc}"
        ) from exc
    _check_store_payload(payload)
    if payload_is_deflated(payload):
        if pool is None:
            ref = entry.get("blocks")
            if not isinstance(ref, dict):
                raise SnapshotError(
                    f"snapshot shard {entry['file']} is block-deflated "
                    f"but its manifest entry has no blocks reference"
                )
            pool = read_block_pool(directory, ref)
        payload = inflate_store_payload(payload, pool)
    if payload.get("framework") != entry.get("framework"):
        raise SnapshotError(
            f"snapshot shard {entry['file']} holds "
            f"{payload.get('framework')!r}, manifest says "
            f"{entry.get('framework')!r}"
        )
    return payload


def load_snapshot(directory: str) -> dict[str, dict]:
    """Every shard image in the snapshot, keyed by framework name."""
    manifest = read_manifest(directory)
    pool: dict[str, bytes] | None = None
    out = {}
    for entry in manifest["shards"]:
        ref = entry.get("blocks")
        if pool is None and isinstance(ref, dict):
            pool = read_block_pool(directory, ref)
        out[entry["framework"]] = read_shard_payload(directory, entry, pool)
    return out

"""Versioned on-disk snapshots: a federation's store images in a directory.

Snapshot export is how a replica (or a crashed remote shard) comes up warm
with **zero** workload runs: every shard's committed epoch is written as
one RDBC container (:data:`~repro.core.serialize.STORE_KIND`, CRC-checked
by the container itself) next to a ``MANIFEST.json`` that records the
snapshot schema, each shard's framework/fingerprint/generation, and a
process-stable digest of each container's bytes.  Import verifies the
digest before decoding, so a torn or tampered file surfaces as
:class:`~repro.errors.SnapshotError` rather than a half-imported store.

Write ordering makes export crash-safe without locks: shard containers are
written first (each through the durable atomic-write helper - temp file,
``fsync``, ``os.replace``, parent-directory ``fsync``), the manifest last,
also atomically.  A reader therefore either sees the previous complete
snapshot or the new one - never a manifest pointing at missing or partial
files - and (with fsync enabled) what it sees survives power loss.
Readers call the ``snapshot.read`` fault site, so the fault harness can
rehearse corrupt/missing snapshots deterministically.

When a shard has a write-ahead log (:mod:`repro.serving.wal`), its
manifest entry also records the ``wal_seq`` watermark: the last WAL
record reflected in the image.  Recovery replays only records past the
watermark, which is what makes checkpoint-then-truncate crash-safe.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from repro.core.serialize import (
    SCHEMA_VERSION,
    _check_store_payload,
    payload_dumps,
    payload_loads,
    stable_digest,
)
from repro.errors import (
    CacheDecodeError,
    CacheSchemaError,
    SnapshotError,
    SnapshotSchemaError,
)
from repro.testing import faults
from repro.utils.atomicio import atomic_write_bytes

#: Bump on any change to the manifest layout or file naming.
SNAPSHOT_SCHEMA = 1

MANIFEST_NAME = "MANIFEST.json"


def shard_filename(framework: str) -> str:
    return f"shard--{framework}.rdbc"


def _atomic_write(path: str, data: bytes) -> None:
    atomic_write_bytes(path, data)


def write_snapshot(
    directory: str,
    payloads: Mapping[str, dict],
    wal_seqs: Mapping[str, int] | None = None,
) -> dict:
    """Write one store image per framework + the manifest; returns it.

    ``payloads`` maps framework name -> a store-image payload tree
    (:meth:`~repro.serving.store.DebloatStore.export_state` output).
    Re-exporting an unchanged federation rewrites byte-identical files.
    ``wal_seqs`` optionally maps framework name -> the WAL watermark
    reflected in the image, recorded as the shard entry's ``wal_seq``
    (readers without a WAL ignore the extra key).
    """
    os.makedirs(directory, exist_ok=True)
    shards = []
    for framework in sorted(payloads):
        payload = payloads[framework]
        _check_store_payload(payload)
        blob = payload_dumps(payload)
        filename = shard_filename(framework)
        _atomic_write(os.path.join(directory, filename), blob)
        entry = {
            "framework": framework,
            "fingerprint": payload.get("fingerprint"),
            "generation": int(payload.get("generation", 0)),
            "file": filename,
            "bytes": len(blob),
            "digest": stable_digest(blob),
        }
        if wal_seqs is not None and framework in wal_seqs:
            entry["wal_seq"] = int(wal_seqs[framework])
        shards.append(entry)
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "container_schema": SCHEMA_VERSION,
        "shards": shards,
    }
    _atomic_write(
        os.path.join(directory, MANIFEST_NAME),
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return manifest


def snapshot_exists(directory: str) -> bool:
    return os.path.isfile(os.path.join(directory, MANIFEST_NAME))


def read_manifest(directory: str) -> dict:
    """The snapshot's manifest; every failure is a :class:`SnapshotError`."""
    faults.check("snapshot.read")
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "rb") as fh:
            manifest = json.loads(fh.read().decode("utf-8"))
    except OSError as exc:
        raise SnapshotError(f"no snapshot manifest at {path}: {exc}") from exc
    except ValueError as exc:
        raise SnapshotError(f"snapshot manifest is not JSON: {exc}") from exc
    schema = manifest.get("schema") if isinstance(manifest, dict) else None
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotSchemaError(
            f"snapshot schema {schema!r} != supported {SNAPSHOT_SCHEMA}"
        )
    if manifest.get("container_schema") != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"snapshot containers use schema "
            f"{manifest.get('container_schema')!r} != supported "
            f"{SCHEMA_VERSION}"
        )
    if not isinstance(manifest.get("shards"), list):
        raise SnapshotError("snapshot manifest has no shard list")
    return manifest


def read_shard_payload(directory: str, entry: dict) -> dict:
    """One manifest entry's store image, digest-verified then decoded."""
    faults.check("snapshot.read")
    path = os.path.join(directory, entry["file"])
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotError(
            f"snapshot shard file {path} unreadable: {exc}"
        ) from exc
    if stable_digest(blob) != entry.get("digest"):
        raise SnapshotError(
            f"snapshot shard {entry['file']} digest mismatch (torn write "
            f"or tampering)"
        )
    try:
        payload = payload_loads(blob)
    except CacheSchemaError as exc:
        raise SnapshotSchemaError(str(exc)) from exc
    except CacheDecodeError as exc:
        raise SnapshotError(
            f"snapshot shard {entry['file']} is corrupt: {exc}"
        ) from exc
    _check_store_payload(payload)
    if payload.get("framework") != entry.get("framework"):
        raise SnapshotError(
            f"snapshot shard {entry['file']} holds "
            f"{payload.get('framework')!r}, manifest says "
            f"{entry.get('framework')!r}"
        )
    return payload


def load_snapshot(directory: str) -> dict[str, dict]:
    """Every shard image in the snapshot, keyed by framework name."""
    manifest = read_manifest(directory)
    return {
        entry["framework"]: read_shard_payload(directory, entry)
        for entry in manifest["shards"]
    }

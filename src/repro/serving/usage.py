"""Per-workload usage capture for the serving store.

Admission cost is dominated by the fused instrumented run (kernel detector +
CPU profiler attached to one execution, exactly as ``Debloater.debloat``
composes them).  :func:`capture_usage` performs that run and packages the
result; :func:`cached_usage` routes it through the two-tier
:data:`~repro.experiments.common.PIPELINE_CACHE` (kind ``admission_usage``),
so a store rebuilt in a fresh process re-admits its catalog from disk with
**zero** workload runs - the "warm store survives restarts" property.

Usage sets and run metrics are deterministic functions of (spec, framework
build, cost model), so serving results are byte-identical with the cache
cold, warm, or disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detect import KernelDetector
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.frameworks.spec import Framework
from repro.loader.profiler import FunctionProfiler
from repro.workloads.metrics import RunMetrics
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

#: Cached-value kind for persisted admission usage (disk tier).
USAGE_KIND = "admission_usage"


@dataclass(frozen=True)
class WorkloadUsage:
    """Everything one workload's instrumented run contributes to a union."""

    workload_id: str
    #: soname -> detected CPU-launching kernel names.
    kernels: dict[str, frozenset[str]]
    #: soname -> sorted used-function symbol indices.
    functions: dict[str, np.ndarray]
    #: Metrics of the fused instrumented run (the verification baseline,
    #: exactly as ``debloat_many`` recorded them).
    metrics: RunMetrics

    def kernel_count(self) -> int:
        return sum(len(v) for v in self.kernels.values())

    def function_count(self) -> int:
        return sum(int(v.size) for v in self.functions.values())


def capture_usage(
    spec: WorkloadSpec,
    framework: Framework,
    costs: CostModel = DEFAULT_COSTS,
) -> WorkloadUsage:
    """One fused instrumented run: detector + profiler on the same execution."""
    detector = KernelDetector(costs)
    profiler = FunctionProfiler()
    metrics = WorkloadRunner(
        spec, framework, costs, subscribers=(detector,), profiler=profiler
    ).run()
    return WorkloadUsage(
        workload_id=spec.workload_id,
        kernels=detector.used_kernels(),
        functions=profiler.used_functions(),
        metrics=metrics,
    )


def usage_to_payload(usage: WorkloadUsage) -> dict:
    from repro.core import serialize

    return {
        "workload_id": usage.workload_id,
        "kernels": {
            soname: sorted(names)
            for soname, names in sorted(usage.kernels.items())
        },
        "functions": {
            soname: np.asarray(idx, dtype=np.int64)
            for soname, idx in sorted(usage.functions.items())
        },
        "metrics": serialize.metrics_to_payload(usage.metrics),
    }


def usage_from_payload(payload: dict) -> WorkloadUsage:
    from repro.core import serialize

    return WorkloadUsage(
        workload_id=payload["workload_id"],
        kernels={
            soname: frozenset(names)
            for soname, names in payload["kernels"].items()
        },
        functions={
            soname: np.asarray(idx, dtype=np.int64)
            for soname, idx in payload["functions"].items()
        },
        metrics=serialize.metrics_from_payload(payload["metrics"]),
    )


def cached_usage(
    spec: WorkloadSpec, framework: Framework, cache=None
) -> tuple[WorkloadUsage, bool]:
    """Capture usage through the pipeline cache's value tier.

    Returns ``(usage, from_cache)``.  Only valid for catalog framework
    builds (the disk key includes the framework-build fingerprint derived
    from the catalog generator) under the default cost model; the store
    guards both.  ``cache`` overrides the process-wide cache (the engine
    facade threads its own through the store).
    """
    if cache is None:
        from repro.experiments.common import PIPELINE_CACHE

        cache = PIPELINE_CACHE

    ran = False

    def compute() -> dict:
        nonlocal ran
        ran = True
        return usage_to_payload(capture_usage(spec, framework))

    value = cache.get_or_run_value(
        spec, framework.scale, USAGE_KIND, (), compute
    )
    return usage_from_payload(value), not ran

"""Asyncio HTTP/JSON front-end over :class:`~repro.api.engine.DebloatEngine`.

The first network surface of the serving tier: a minimal HTTP/1.1 layer on
``asyncio.start_server`` (no third-party server dependency) exposing the
engine's admission, health, and inspection machinery as thin routes over
the existing services.  Endpoints:

===========================  ================================================
``POST /v1/admit``           admit one workload (JSON body, see
                             :mod:`repro.serving.protocol`); 200 with the
                             :class:`AdmissionResult` payload
``POST /v1/admit_batch``     admit an ordered list in one request
``GET  /healthz``            engine health; 200 when every layer is ``ok``,
                             503 while degraded/recovering/draining
``GET  /metrics``            Prometheus text: request counters, shed/deadline
                             counters, admission latency histograms, live
                             queue depths and store counters
``POST /v1/evict``           evict a workload from its shard(s)
``GET  /v1/snapshot``        the federation snapshot (per-shard JSON view)
===========================  ================================================

**Backpressure is first-class.**  Admissions pass through a bounded gate
(``queue_bound``): when the number of admissions in flight behind HTTP
reaches the bound, new ones are *shed* with ``503`` + ``Retry-After``
instead of buffering without limit.  Each request carries a deadline
(``request_deadline_s`` default, per-request ``deadline_s`` override);
expiry resolves to ``504`` through the
:class:`~repro.errors.TicketTimeoutError` path - the ticket stays valid,
so the admission still commits in the background and a retry is served
from the store's recorded usage.

**Coalescing.**  Concurrent admits that arrive within
``coalesce_window_s`` of each other are drained by a pump task and
submitted back-to-back, where the queue server's ``batch_max`` drain
merges them into one :meth:`DebloatStore.admit_many` union pass per
shard - one delta locate/compact per grown library instead of one per
request.  End state is byte-identical to sequential admission.

**Thread bridging.**  The engine's :class:`AdmissionTicket` resolves on a
``threading.Event``; handlers await it via ``loop.run_in_executor`` on a
waiter pool sized to the admission bound, so the event loop never blocks
on a worker thread.

**Graceful drain.**  ``SIGTERM``/``SIGINT`` (or :meth:`drain`) stops the
listener, flushes the coalescing pump, closes the engine - whose server
``close()`` drains every queued ticket or fails it typed - and then waits
for the in-flight HTTP responses to flush: no request ever hangs.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    AdmissionError,
    ProtocolError,
    ReproError,
    ServerClosedError,
    TicketTimeoutError,
    UsageError,
)
from repro.serving import protocol
from repro.serving.server import AdmissionTicket

logger = logging.getLogger("repro.serving.http")

#: Hard framing limits (independent of the configurable body cap).
_MAX_REQUEST_LINE = 8190
_MAX_HEADERS = 100

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


@dataclass
class _PendingAdmit:
    """One admit waiting in the coalescing window."""

    spec: object
    future: asyncio.Future
    enqueued_at: float


@dataclass
class _Response:
    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()
    #: Extra audit fields (workload id, provenance, waits) for the log.
    audit: dict = field(default_factory=dict)


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def _error_response(
    status: int, exc: BaseException, **headers: str
) -> _Response:
    return _Response(
        status,
        _json_body({"error": str(exc), "type": type(exc).__name__}),
        headers=tuple(
            (k.replace("_", "-"), v) for k, v in headers.items()
        ),
        audit={"outcome": f"error:{type(exc).__name__}"},
    )


def _status_for_error(exc: BaseException) -> int:
    if isinstance(exc, TicketTimeoutError):
        return 504
    if isinstance(exc, ServerClosedError):
        return 503
    if isinstance(exc, UsageError):  # includes ProtocolError
        return 400
    if isinstance(exc, (AdmissionError, ReproError)):
        return 500
    return 500


class DebloatHttpServer:
    """The asyncio front-end (one per engine; see module docstring)."""

    def __init__(self, engine, config=None) -> None:
        from repro.api.config import HttpConfig

        self.engine = engine
        self.config = config if config is not None else HttpConfig()
        self.metrics = protocol.MetricsRegistry()
        self._describe_metrics()
        #: Structured per-request audit trail (most recent last); every
        #: record is also emitted through the ``repro.serving.http``
        #: logger as one JSON line.
        self.audit: deque[dict] = deque(maxlen=self.config.audit_log_size)
        self._request_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._listener: asyncio.base_events.Server | None = None
        self._pump_task: asyncio.Task | None = None
        self._admit_queue: asyncio.Queue = asyncio.Queue()
        #: Admissions currently behind HTTP (window + queue + executing);
        #: the backpressure gate sheds beyond ``queue_bound``.
        self._inflight = 0
        #: Requests between read and fully-written response; drain waits
        #: for this to hit zero before cutting idle keep-alive readers.
        self._active_requests = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._drained = False
        self._waiters = ThreadPoolExecutor(
            max_workers=max(2, self.config.queue_bound),
            thread_name_prefix="http-ticket-wait",
        )
        self.address: tuple[str, int] | None = None

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("http_requests_total",
                   "HTTP requests by method, path, and status")
        m.describe("admissions_served_total",
                   "admissions answered 200 over HTTP")
        m.describe("admissions_shed_total",
                   "admissions rejected 503 by the backpressure gate")
        m.describe("admissions_deadline_total",
                   "admissions answered 504 after their deadline")
        m.describe("admissions_failed_total",
                   "admissions answered with a non-shed error")
        m.describe("coalesce_batches_total",
                   "coalescing-window flushes toward the queue server")
        m.describe("coalesced_admissions_total",
                   "admissions submitted through the coalescing window")
        m.describe("queued", "tickets not yet dequeued by a worker")
        m.describe("in_flight", "unresolved admission tickets")
        m.describe("http_inflight",
                   "admissions currently held behind HTTP")
        m.describe("admission_latency_seconds",
                   "submit-to-resolution admission latency")
        m.describe("admission_queue_wait_seconds",
                   "coalescing-window + submit wait ahead of admission")
        m.describe("serving_wal_appended",
                   "write-ahead log records appended since open")
        m.describe("serving_wal_lag",
                   "WAL records not yet folded into a checkpoint")
        m.describe("serving_wal_failures",
                   "WAL appends that failed after the store committed")
        m.describe("serving_wal_quarantined_bytes",
                   "torn WAL tail bytes quarantined during recovery")
        m.describe("serving_wal_replayed",
                   "WAL records replayed by the last recovery")
        m.describe("serving_checkpoints_run",
                   "durability checkpoints completed")
        m.describe("serving_checkpoints_failed",
                   "durability checkpoints aborted by an error")
        m.describe("storage_blocks_total",
                   "content-addressed blocks resident in the shared store")
        m.describe("storage_bytes_physical",
                   "physical bytes resident across all blocks")
        m.describe("storage_bytes_logical",
                   "logical bytes referenced by live shard manifests")
        m.describe("storage_dedupe_ratio",
                   "logical over physical bytes (1.0 = no sharing)")
        m.describe("storage_evicted_bytes_total",
                   "physical bytes freed by block release since open")

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener and start the pump; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self.engine.open()
        self.engine.server()  # fail fast on bad serving config
        self._pump_task = self._loop.create_task(self._pump())
        self._listener = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._listener.sockets[0]
        host, port = sock.getsockname()[:2]
        self.address = (host, port)
        logger.info("serving HTTP on %s:%d", host, port)
        return host, port

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush, close, flush responses.

        Reuses the engine/server ``close()`` semantics: every ticket still
        queued is drained by the workers (or failed typed), so every
        in-flight HTTP request gets a final response - nothing hangs.
        """
        if self._drained:
            return
        self._drained = True
        self._closing = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        await self._admit_queue.put(None)
        if self._pump_task is not None:
            await self._pump_task
        # Engine close joins worker threads after they drain the queue;
        # run it off-loop so ticket waiters keep resolving meanwhile.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.engine.close)
        # Every ticket is resolved now; wait for in-flight responses to
        # flush, then cut connections that are only idling in keep-alive.
        deadline = loop.time() + self.config.drain_timeout_s
        while self._active_requests and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        self._waiters.shutdown(wait=False)
        logger.info("drained: %d audited requests", len(self.audit))

    async def serve_forever(self, announce=None) -> None:
        """Start, announce, serve until SIGTERM/SIGINT, then drain."""
        host, port = await self.start()
        if announce is not None:
            announce(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.drain()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _FramingError as exc:
                    await self._write_response(
                        writer, _error_response(exc.status, exc),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                started = time.perf_counter()
                self._active_requests += 1
                try:
                    response = await self._dispatch(request)
                    keep_alive = request.keep_alive and not self._closing
                    await self._write_response(
                        writer, response, keep_alive=keep_alive
                    )
                finally:
                    self._active_requests -= 1
                self._audit(request, response,
                            time.perf_counter() - started)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader) -> _HttpRequest | None:
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_REQUEST_LINE:
            raise _FramingError(400, "request line too long")
        try:
            method, target, version = line.decode("ascii").split()
        except ValueError:
            raise _FramingError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _FramingError(400, "too many headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _FramingError(400, f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _FramingError(501, "chunked bodies are not supported")
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _FramingError(400, "bad Content-Length") from None
            if length < 0:
                raise _FramingError(400, "bad Content-Length")
            if length > self.config.max_body_bytes:
                raise _FramingError(413, "request body too large")
            body = await reader.readexactly(length)
        elif method == "POST":
            raise _FramingError(411, "POST requires Content-Length")
        keep_alive = (
            version != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        path = target.split("?", 1)[0]
        return _HttpRequest(method, path, headers, body, keep_alive)

    async def _write_response(
        self, writer, response: _Response, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode() + response.body
        )
        await writer.drain()

    def _audit(
        self, request: _HttpRequest, response: _Response, duration_s: float
    ) -> None:
        record = {
            "request_id": f"req-{next(self._request_ids)}",
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "duration_s": round(duration_s, 6),
            **response.audit,
        }
        self.audit.append(record)
        logger.info("%s", json.dumps(record, sort_keys=True))
        self.metrics.inc(
            "http_requests_total",
            method=request.method,
            path=request.path,
            status=str(response.status),
        )

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest) -> _Response:
        routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/v1/snapshot"): self._handle_snapshot,
            ("POST", "/v1/snapshot/export"): self._handle_snapshot_export,
            ("POST", "/v1/admit"): self._handle_admit,
            ("POST", "/v1/admit_batch"): self._handle_admit_batch,
            ("POST", "/v1/evict"): self._handle_evict,
        }
        handler = routes.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in routes}
            if request.path in known_paths:
                return _error_response(
                    405, ProtocolError(
                        f"{request.method} not allowed on {request.path}"
                    )
                )
            return _error_response(
                404, ProtocolError(f"no route {request.path}")
            )
        try:
            return await handler(request)
        except Exception as exc:  # noqa: BLE001 - boundary: never kill the conn
            status = _status_for_error(exc)
            if status >= 500:
                logger.exception("unhandled error on %s", request.path)
            return _error_response(status, exc)

    # -- endpoints -------------------------------------------------------------

    async def _handle_healthz(self, request: _HttpRequest) -> _Response:
        loop = asyncio.get_running_loop()
        health = await loop.run_in_executor(None, self.engine.health)
        ok = protocol.health_is_ok(health) and not self._closing
        if self._closing:
            health = {**health, "state": "draining"}
        return _Response(
            200 if ok else 503, _json_body(health),
            audit={"outcome": health.get("state", "unknown")},
        )

    async def _handle_metrics(self, request: _HttpRequest) -> _Response:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, self.engine.stats)
        gauges = {
            f"serving_{name}": value
            for name, value in stats.items()
            if isinstance(value, int)
        }
        gauges["http_inflight"] = self._inflight
        # The two queue-depth fields keep their distinct names all the
        # way out: "queued" (not yet dequeued) vs "in_flight"
        # (unresolved, including currently-admitting).
        for name in ("queued", "in_flight"):
            if name in stats:
                gauges[name] = stats[name]
        # Block-store gauges export under their own storage_* names (no
        # serving_ prefix); dedupe_ratio is the one float gauge.
        storage = await loop.run_in_executor(None, self.engine.storage_stats)
        gauges.update(storage)
        text = self.metrics.render(gauges)
        return _Response(
            200, text.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_snapshot(self, request: _HttpRequest) -> _Response:
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(None, self.engine.snapshot)
        return _Response(
            200, _json_body(protocol.snapshot_to_payload(snapshot))
        )

    async def _handle_snapshot_export(
        self, request: _HttpRequest
    ) -> _Response:
        """Write a warm store snapshot to disk; body: ``{"directory"?}``.

        Without a directory the engine's configured
        ``snapshot_dir/federation`` is used (400 when neither is set).
        """
        body = protocol.decode_json(request.body) if request.body else {}
        if not isinstance(body, dict):
            raise ProtocolError("snapshot export body must be an object")
        directory = body.get("directory")
        if directory is not None and not isinstance(directory, str):
            raise ProtocolError("directory must be a string")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, lambda: self.engine.export_snapshot(directory)
        )
        payload = {
            "directory": result.value["directory"],
            "shards": [
                {
                    "framework": entry["framework"],
                    "file": entry["file"],
                    "generation": entry["generation"],
                    "bytes": entry["bytes"],
                }
                for entry in result.value["manifest"]["shards"]
            ],
            "wall_s": round(result.wall_s, 6),
        }
        return _Response(
            200, _json_body(payload),
            audit={"directory": result.value["directory"]},
        )

    async def _handle_evict(self, request: _HttpRequest) -> _Response:
        workload_id, framework = protocol.parse_evict(
            protocol.decode_json(request.body)
        )
        from repro.api.requests import EvictRequest

        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None,
            lambda: self.engine.evict(
                EvictRequest(workload_id=workload_id, framework=framework)
            ),
        )
        payload = {
            "workload_id": workload_id,
            "evicted": {
                name: protocol.eviction_to_payload(res)
                for name, res in result.value.items()
            },
        }
        return _Response(
            200, _json_body(payload), audit={"workload_id": workload_id}
        )

    async def _handle_admit(self, request: _HttpRequest) -> _Response:
        spec, deadline = protocol.parse_admit(
            protocol.decode_json(request.body)
        )
        shed = self._shed_check(1)
        if shed is not None:
            return shed
        self._inflight += 1
        try:
            return await self._admit_via_pump(spec, deadline)
        finally:
            self._inflight -= 1

    async def _handle_admit_batch(self, request: _HttpRequest) -> _Response:
        specs, deadline = protocol.parse_admit_batch(
            protocol.decode_json(request.body)
        )
        shed = self._shed_check(len(specs))
        if shed is not None:
            return shed
        self._inflight += len(specs)
        try:
            if self._closing:
                raise ServerClosedError("server is draining")
            # Already a batch: submit back-to-back (no window wait); the
            # queue server's batch_max drain turns it into admit_many.
            server = self.engine.server()
            tickets = [server.submit(spec) for spec in specs]
            deadline_at = self._now() + (
                deadline if deadline is not None
                else self.config.request_deadline_s
            )
            results, failures, errors = [], [], []
            for spec, ticket in zip(specs, tickets):
                outcome = await self._await_ticket(ticket, deadline_at)
                if isinstance(outcome, BaseException):
                    errors.append(outcome)
                    failures.append({
                        "workload_id": spec.workload_id,
                        "error": str(outcome),
                        "type": type(outcome).__name__,
                    })
                else:
                    results.append(protocol.admission_to_payload(
                        outcome, latency_s=ticket.latency_s
                    ))
                    self._observe_ticket(ticket)
            # Partial success still reports 200 (per-item outcomes are in
            # the body); an all-failed batch takes the worst item status.
            status = 200 if results else max(
                (_status_for_error(exc) for exc in errors), default=200
            )
            if results:
                self.metrics.inc("admissions_served_total", len(results))
            if failures:
                self.metrics.inc("admissions_failed_total", len(failures))
            return _Response(
                status,
                _json_body({"results": results, "failed": failures}),
                audit={
                    "workloads": len(specs),
                    "outcome": "served" if not failures else "partial",
                },
            )
        finally:
            self._inflight -= len(specs)

    # -- admission plumbing ----------------------------------------------------

    def _now(self) -> float:
        assert self._loop is not None
        return self._loop.time()

    def _shed_check(self, n: int) -> _Response | None:
        """The backpressure gate: 503 + Retry-After instead of buffering."""
        if self._inflight + n > self.config.queue_bound:
            self.metrics.inc("admissions_shed_total", n)
            return _error_response(
                503,
                UsageError(
                    f"admission queue is full "
                    f"({self._inflight}/{self.config.queue_bound} in "
                    f"flight); retry later"
                ),
                Retry_After=str(self.config.retry_after_s),
            )
        return None

    async def _admit_via_pump(self, spec, deadline) -> _Response:
        if self._closing:
            raise ServerClosedError("server is draining")
        deadline_s = (
            deadline if deadline is not None
            else self.config.request_deadline_s
        )
        deadline_at = self._now() + deadline_s
        assert self._loop is not None
        item = _PendingAdmit(spec, self._loop.create_future(), self._now())
        await self._admit_queue.put(item)
        try:
            ticket = await asyncio.wait_for(
                item.future, deadline_at - self._now()
            )
        except asyncio.TimeoutError:
            self.metrics.inc("admissions_deadline_total")
            return _error_response(
                504,
                TicketTimeoutError(
                    f"admission of {spec.workload_id} still queued after "
                    f"{deadline_s}s"
                ),
            )
        queue_wait_s = self._now() - item.enqueued_at
        self.metrics.observe("admission_queue_wait_seconds", queue_wait_s)
        outcome = await self._await_ticket(ticket, deadline_at)
        if isinstance(outcome, TicketTimeoutError):
            self.metrics.inc("admissions_deadline_total")
            return _error_response(504, outcome)
        if isinstance(outcome, BaseException):
            self.metrics.inc("admissions_failed_total")
            return _error_response(_status_for_error(outcome), outcome)
        self._observe_ticket(ticket)
        self.metrics.inc("admissions_served_total")
        payload = protocol.admission_to_payload(
            outcome, latency_s=ticket.latency_s, queue_wait_s=queue_wait_s
        )
        return _Response(
            200, _json_body(payload),
            audit={
                "workload_id": outcome.workload_id,
                "cache": payload["cache_source"],
                "queue_wait_s": round(queue_wait_s, 6),
                "latency_s": payload.get("latency_s"),
                "generation": outcome.generation,
                "outcome": "served",
            },
        )

    async def _await_ticket(
        self, ticket: AdmissionTicket, deadline_at: float
    ):
        """Bridge the threading ticket into this coroutine.

        Returns the :class:`AdmissionResult` or the exception the wait
        produced (including :class:`TicketTimeoutError` on deadline) -
        returned, not raised, so batch handlers can keep iterating.
        """
        assert self._loop is not None
        timeout = max(0.0, deadline_at - self._now())
        try:
            return await self._loop.run_in_executor(
                self._waiters, ticket.result, timeout
            )
        except BaseException as exc:  # noqa: BLE001 - relayed per protocol
            return exc

    def _observe_ticket(self, ticket: AdmissionTicket) -> None:
        if ticket.latency_s is not None:
            self.metrics.observe("admission_latency_seconds",
                                 ticket.latency_s)

    async def _pump(self) -> None:
        """Drain the coalescing window into the queue server.

        One flush submits every admit collected within
        ``coalesce_window_s`` (capped at ``coalesce_max``) back-to-back,
        so a worker's ``batch_max`` drain picks them up as one
        ``admit_many`` batch.  The window only ever delays an admit by
        the window length; a lone admit in a quiet server flushes as
        soon as the window closes.
        """
        cfg = self.config
        stopping = False
        while not stopping:
            item = await self._admit_queue.get()
            if item is None:
                break
            batch = [item]
            if cfg.coalesce_window_s > 0 and cfg.coalesce_max > 1:
                deadline = self._now() + cfg.coalesce_window_s
                while len(batch) < cfg.coalesce_max:
                    remaining = deadline - self._now()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._admit_queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if nxt is None:
                        stopping = True
                        break
                    batch.append(nxt)
            self._flush(batch)
        # Drain stragglers that raced the stop sentinel.
        leftovers = []
        while True:
            try:
                nxt = self._admit_queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt is not None:
                leftovers.append(nxt)
        if leftovers:
            self._flush(leftovers)

    def _flush(self, batch: list[_PendingAdmit]) -> None:
        """Submit one coalesced batch; resolve each waiter to its ticket."""
        self.metrics.inc("coalesce_batches_total")
        self.metrics.inc("coalesced_admissions_total", len(batch))
        server = self.engine.server()
        for item in batch:
            if item.future.done():  # waiter gave up (deadline/cancel)
                continue
            try:
                ticket = server.submit(item.spec)
            except Exception as exc:  # noqa: BLE001 - relayed to the waiter
                item.future.set_exception(exc)
            else:
                item.future.set_result(ticket)


class _FramingError(Exception):
    """A malformed HTTP exchange (framing, not payload, problems)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def parse_http_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` -> (host, port).

    A bare or empty host binds loopback; ``negativa-ml serve --http
    0.0.0.0:8000`` opts into all interfaces explicitly.
    """
    text = text.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise UsageError(
            f"--http expects HOST:PORT or :PORT, got {text!r}"
        ) from None
    if not (0 <= port <= 65535):
        raise UsageError(f"--http port out of range: {port}")
    return host or "127.0.0.1", port


class BackgroundHttpServer:
    """Run a :class:`DebloatHttpServer` on a dedicated event-loop thread.

    The test/bench/example harness: ``with BackgroundHttpServer(engine,
    config) as bg:`` yields a bound server whose ``bg.port`` live clients
    (threads, subprocesses) can hit; exit drains gracefully.
    """

    def __init__(self, engine, config=None) -> None:
        self.server = DebloatHttpServer(engine, config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server.address is not None
        return self.server.address[1]

    @property
    def host(self) -> str:
        assert self.server.address is not None
        return self.server.address[0]

    def start(self) -> "BackgroundHttpServer":
        self._thread = threading.Thread(
            target=self._run, name="debloat-http", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self) -> None:
        """Drain the server and stop the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), loop
        )
        future.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=60)

    def __enter__(self) -> "BackgroundHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Per-shard write-ahead admissions log and crash recovery.

The serving store (:mod:`repro.serving.store`) made single-process faults
transactional, and :mod:`repro.serving.snapshot` added *manual* image
export/import - but a crashed engine still lost every admission since the
last explicit export.  This module closes that gap with a write-ahead log
(WAL): every committed ``admit`` / ``admit_many`` / ``evict`` / ``reset``
appends one record *after* the store transaction commits, so the log is a
faithful journal of the committed history, and
:meth:`~repro.api.engine.DebloatEngine.open` replays it automatically.

Record framing
--------------

The log is a flat sequence of length-prefixed RDBC containers::

    [u32 length][RDBC container] [u32 length][RDBC container] ...

Each container (:func:`repro.core.serialize.value_dumps` with kind
:data:`WAL_KIND`) carries the serializer's magic, schema version, and
whole-payload CRC32 - so every record is independently checksummed - and
the decoded payload holds a strictly increasing ``seq`` assigned at append
time.  :func:`scan_wal` recovers the **longest valid prefix**: it stops at
the first short frame, oversize length, checksum/decode failure, or
non-monotonic sequence number, and never raises on hostile bytes.  On
open, anything past the valid prefix is quarantined to a sidecar file and
the live log is truncated back to the prefix, so a torn tail from a crash
mid-append costs at most the record being written.

Durability contract
-------------------

``fsync`` policy ``always`` syncs after every append (survives power
loss), ``batch`` syncs every N appends and on checkpoint (bounded loss
window), ``off`` only flushes to the OS (survives process death - the
crash-matrix regime - but not power loss).  Appends happen under the
store's admission lock, so WAL order equals commit order.  A crash between
a store commit and its WAL append loses exactly that record: the *durable*
state is defined by the log, which is what recovery reproduces
byte-identically.

Checkpointing truncates the log: export a snapshot (manifest written
last, atomically, recording each shard's ``wal_seq`` watermark), **then**
drop records ``<= watermark``.  A kill between the two steps is harmless -
recovery loads the new snapshot and skips replayed-over records by
watermark, so the only cost is extra replay, never divergence.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from typing import Any, Callable

from repro.core import serialize
from repro.errors import (
    SnapshotError,
    WalError,
    WalReplayError,
)
from repro.testing import faults
from repro.utils import atomicio

__all__ = [
    "WAL_KIND",
    "WAL_SUFFIX",
    "MAX_RECORD_BYTES",
    "FSYNC_POLICIES",
    "WalScan",
    "scan_wal",
    "WriteAheadLog",
    "DurabilityController",
]

#: RDBC ``kind`` tag of a WAL record container.
WAL_KIND = "wal_record"

#: Filename suffix of live per-framework logs.
WAL_SUFFIX = ".wal"

#: Upper bound on one record's container size (mirrors the remote-shard
#: frame cap); a larger length prefix marks the tail invalid.
MAX_RECORD_BYTES = 1 << 30

#: Supported fsync policies, strictest first.
FSYNC_POLICIES = ("always", "batch", "off")

_LEN = struct.Struct("<I")

#: Operations a WAL record may journal (mirrors the store's mutators).
WAL_OPS = ("admit", "admit_many", "evict", "reset", "import")


class WalScan:
    """Result of scanning raw log bytes for the longest valid prefix."""

    __slots__ = ("records", "frames", "valid_length", "total_length")

    def __init__(
        self,
        records: tuple[dict, ...],
        frames: tuple[tuple[int, int], ...],
        valid_length: int,
        total_length: int,
    ):
        self.records = records
        #: ``(start, end)`` byte span of each valid record's frame.
        self.frames = frames
        self.valid_length = valid_length
        self.total_length = total_length

    @property
    def torn_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean log)."""
        return self.total_length - self.valid_length

    @property
    def last_seq(self) -> int:
        return self.records[-1]["seq"] if self.records else 0


def scan_wal(data: bytes) -> WalScan:
    """Recover the longest valid record prefix from raw log bytes.

    Tolerates every corruption mode a crash or bad disk can produce:
    truncated tails, bit flips (caught by the per-container CRC),
    interleaved garbage, oversize or zero length prefixes, and duplicate
    or regressing sequence numbers.  Never raises; scanning simply stops
    at the first invalid frame.
    """
    records: list[dict] = []
    frames: list[tuple[int, int]] = []
    offset = 0
    prev_seq: int | None = None
    total = len(data)
    while True:
        if offset + _LEN.size > total:
            break
        (length,) = _LEN.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            break
        end = offset + _LEN.size + length
        if end > total:
            break
        try:
            record = serialize.value_loads(data[offset + _LEN.size:end],
                                           WAL_KIND)
        except Exception:
            break
        if not isinstance(record, dict):
            break
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            break
        if prev_seq is not None and seq <= prev_seq:
            break
        records.append(record)
        frames.append((offset, end))
        prev_seq = seq
        offset = end
    return WalScan(tuple(records), tuple(frames), offset, total)


class WriteAheadLog:
    """An append-only, CRC-framed journal for one shard's mutations.

    Opening heals the log: the valid prefix is kept, any torn/corrupt
    tail is moved to a ``<name>.quarantine.N`` sidecar, and the live file
    is rewritten to exactly the prefix.  All methods are thread-safe; the
    store calls :meth:`append` under its admission lock so record order
    matches commit order.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "batch",
        fsync_batch_n: int = 8,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if fsync_batch_n < 1:
            raise WalError("fsync_batch_n must be >= 1")
        self.path = path
        self.fsync_policy = fsync
        self.fsync_batch_n = fsync_batch_n
        self._lock = threading.RLock()
        self._closed = False
        self.appended = 0
        self.syncs = 0
        self.truncated_records = 0
        self.quarantined_bytes = 0
        self.quarantine_path: str | None = None
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self._heal()
        self._fh = open(path, "ab")
        self._unsynced = 0

    # -- open-time healing -------------------------------------------------

    def _heal(self) -> None:
        try:
            data = open(self.path, "rb").read()
        except FileNotFoundError:
            data = b""
        scan = scan_wal(data)
        self.last_seq = scan.last_seq
        self.records_on_disk = len(scan.records)
        if scan.torn_bytes:
            self.quarantine_path = self._quarantine_target()
            self.quarantined_bytes = scan.torn_bytes
            atomicio.atomic_write_bytes(
                self.quarantine_path, data[scan.valid_length:]
            )
            atomicio.atomic_write_bytes(
                self.path, data[: scan.valid_length]
            )

    def _quarantine_target(self) -> str:
        n = 0
        while True:
            candidate = f"{self.path}.quarantine.{n}"
            if not os.path.exists(candidate):
                return candidate
            n += 1

    # -- appending ---------------------------------------------------------

    def append(self, record: dict) -> int:
        """Journal one committed mutation; returns its sequence number.

        The record is framed, CRC'd (by the RDBC container), flushed,
        and - per the fsync policy - synced.  Fault site ``wal.append``
        fires before any bytes are written, ``wal.fsync`` before the
        physical sync, so an injected (or kill) fault at either site
        leaves a clean prefix on disk.
        """
        with self._lock:
            if self._closed:
                raise WalError(f"append to closed WAL {self.path!r}")
            faults.check("wal.append")
            seq = self.last_seq + 1
            blob = serialize.value_dumps(dict(record, seq=seq), WAL_KIND)
            self._fh.write(_LEN.pack(len(blob)) + blob)
            self._fh.flush()
            self.last_seq = seq
            self.appended += 1
            self.records_on_disk += 1
            self._unsynced += 1
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch"
                and self._unsynced >= self.fsync_batch_n
            ):
                self._fsync_locked()
            return seq

    def _fsync_locked(self) -> None:
        faults.check("wal.fsync")
        atomicio.fsync_file(self._fh.fileno())
        self._unsynced = 0
        self.syncs += 1

    def sync(self) -> None:
        """Force unsynced appends to stable storage (``off`` still flushes)."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync_policy != "off" and self._unsynced:
                self._fsync_locked()

    # -- reading / truncation ---------------------------------------------

    def records(self) -> tuple[dict, ...]:
        """A fresh scan of the on-disk valid prefix."""
        with self._lock:
            self._fh.flush()
            with open(self.path, "rb") as fh:
                return scan_wal(fh.read()).records

    def truncate_through(self, seq: int) -> int:
        """Drop every record with ``seq <=`` the watermark; keep the rest.

        Rewrites the kept frames through the durable atomic-write helper
        (tmp + fsync + rename + dir fsync) and reopens the append handle,
        so a kill at any instant leaves either the old or the new log -
        never a partial one.  Returns the number of records dropped.
        """
        with self._lock:
            if self._closed:
                raise WalError(f"truncate of closed WAL {self.path!r}")
            self._fh.flush()
            with open(self.path, "rb") as fh:
                data = fh.read()
            scan = scan_wal(data)
            kept = [
                data[start:end]
                for record, (start, end) in zip(scan.records, scan.frames)
                if record["seq"] > seq
            ]
            dropped = len(scan.records) - len(kept)
            if dropped == 0:
                return 0
            self._fh.close()
            atomicio.atomic_write_bytes(self.path, b"".join(kept))
            self._fh = open(self.path, "ab")
            self._unsynced = 0
            self.records_on_disk = len(kept)
            self.truncated_records += dropped
            return dropped

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._fh.flush()
                if self.fsync_policy != "off" and self._unsynced:
                    atomicio.fsync_file(self._fh.fileno())
                    self._unsynced = 0
                    self.syncs += 1
            finally:
                self._closed = True
                self._fh.close()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "last_seq": self.last_seq,
                "records_on_disk": self.records_on_disk,
                "appended": self.appended,
                "syncs": self.syncs,
                "truncated_records": self.truncated_records,
                "quarantined_bytes": self.quarantined_bytes,
            }


def _wal_filename(framework_name: str) -> str:
    return f"{framework_name}{WAL_SUFFIX}"


def _framework_of(filename: str) -> str | None:
    if filename.endswith(WAL_SUFFIX):
        return filename[: -len(WAL_SUFFIX)]
    return None


class DurabilityController:
    """Owns the per-shard WALs, recovery-on-open, and checkpointing.

    One controller per :class:`~repro.api.engine.DebloatEngine`.  The
    federation calls :meth:`attach` as it creates local shards (so every
    committed mutation is journaled from the first admission);
    :meth:`recover` runs once during ``open()`` *before* serving starts,
    loading the newest checkpoint snapshot and replaying the WAL tail
    through the zero-run cached-usage path; :meth:`checkpoint` (manual or
    via the background checkpointer thread) bounds replay time by
    snapshotting and truncating.
    """

    def __init__(
        self,
        root: str,
        *,
        fsync: str = "batch",
        fsync_batch_n: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.root = root
        self.wal_dir = os.path.join(root, "wal")
        self.checkpoint_dir = os.path.join(root, "checkpoint")
        os.makedirs(self.wal_dir, exist_ok=True)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_batch_n = fsync_batch_n
        self._clock = clock
        self._lock = threading.RLock()
        self._wals: dict[str, WriteAheadLog] = {}
        self._closed = False
        #: Attach gate: shards created while :meth:`recover` is replaying
        #: must not journal the replay itself; recovery attaches each
        #: recovered shard explicitly and then opens the gate.
        self._ready = False
        self.checkpoints_run = 0
        self.checkpoints_failed = 0
        self.last_checkpoint_error: str | None = None
        self.replayed_records = 0
        self.recovery_report: dict[str, Any] | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- WAL handles -------------------------------------------------------

    def wal_for(self, framework_name: str) -> WriteAheadLog:
        """The (lazily opened, healed) WAL of one framework shard."""
        with self._lock:
            if self._closed:
                raise WalError("durability controller is closed")
            wal = self._wals.get(framework_name)
            if wal is None:
                wal = WriteAheadLog(
                    os.path.join(
                        self.wal_dir, _wal_filename(framework_name)
                    ),
                    fsync=self.fsync_policy,
                    fsync_batch_n=self.fsync_batch_n,
                )
                self._wals[framework_name] = wal
            return wal

    def attach(self, shard) -> None:
        """Journal a (local) federation shard's mutations from now on.

        A no-op for remote shards (workers recover through their own
        snapshots) and while recovery is still replaying (replayed
        records must not be re-appended).
        """
        if getattr(shard, "remote", False):
            return
        with self._lock:
            if not self._ready:
                return
        shard.store.attach_wal(self.wal_for(shard.store.framework.name))

    def _wal_frameworks_on_disk(self) -> list[str]:
        try:
            names = os.listdir(self.wal_dir)
        except FileNotFoundError:
            return []
        found = [_framework_of(name) for name in sorted(names)]
        return [name for name in found if name]

    # -- recovery ----------------------------------------------------------

    def recover(self, federation) -> dict[str, Any]:
        """Rebuild the federation's committed state from snapshot + WAL.

        For every framework with a checkpoint entry or a WAL on disk:
        import the snapshot payload (if any), then replay WAL records
        past the snapshot's ``wal_seq`` watermark in order.  A corrupt
        snapshot shard degrades to a cold full-WAL replay instead of
        failing the open.  Remote shards recover through their own
        worker snapshots and are skipped here.  Returns a report dict
        (also kept as :attr:`recovery_report`).
        """
        report: dict[str, Any] = {
            "frameworks": {},
            "snapshot_loaded": False,
            "replayed": 0,
            "wall_s": 0.0,
        }
        started = self._clock()
        manifest = None
        entries: dict[str, dict] = {}
        from repro.serving import snapshot as snapshots

        if snapshots.snapshot_exists(self.checkpoint_dir):
            try:
                manifest = snapshots.read_manifest(self.checkpoint_dir)
                entries = {
                    entry["framework"]: entry
                    for entry in manifest["shards"]
                }
                report["snapshot_loaded"] = True
            except SnapshotError as exc:
                report["snapshot_error"] = f"{type(exc).__name__}: {exc}"
        frameworks = sorted(
            set(entries) | set(self._wal_frameworks_on_disk())
        )
        for name in frameworks:
            shard = federation.shard(name)
            if getattr(shard, "remote", False):
                report["frameworks"][name] = {"skipped": "remote shard"}
                continue
            wal = self.wal_for(name)
            watermark = 0
            loaded = False
            entry = entries.get(name)
            shard_report: dict[str, Any] = {}
            if entry is not None:
                try:
                    payload = snapshots.read_shard_payload(
                        self.checkpoint_dir, entry
                    )
                    shard.store.import_state(payload)
                    watermark = int(entry.get("wal_seq", 0))
                    loaded = True
                except SnapshotError as exc:
                    shard_report["snapshot_error"] = (
                        f"{type(exc).__name__}: {exc}"
                    )
            replayed = self._replay(shard.store, wal, watermark)
            shard.store.attach_wal(wal)
            federation.warm_shard(name)
            shard_report.update(
                {
                    "snapshot": loaded,
                    "watermark": watermark,
                    "replayed": replayed,
                    "generation": shard.store.generation,
                }
            )
            report["frameworks"][name] = shard_report
            report["replayed"] += replayed
        report["wall_s"] = self._clock() - started
        with self._lock:
            self._ready = True
            self.replayed_records += report["replayed"]
            self.recovery_report = report
        return report

    def _replay(self, store, wal: WriteAheadLog, watermark: int) -> int:
        """Re-apply WAL records past ``watermark``; returns the count.

        Replay drives the store's ordinary mutators with ``verify=False``
        - detection comes from the pipeline cache's recorded usage, so a
        warm cache replays with **zero** workload runs.  After each
        record the store generation must match the one journaled at
        commit time (divergence raises :class:`WalReplayError`); after
        the last record the journaled counters are installed so the
        recovered image is byte-identical to the committed one even for
        replay-variant statistics like usage-cache hits.
        """
        applied = 0
        last: dict | None = None
        for record in wal.records():
            if record["seq"] <= watermark:
                continue
            faults.check("wal.replay")
            op = record.get("op")
            try:
                if op == "admit":
                    store.admit(
                        serialize.spec_from_payload(record["spec"]),
                        verify=False,
                    )
                elif op == "admit_many":
                    store.admit_many(
                        [
                            serialize.spec_from_payload(p)
                            for p in record["specs"]
                        ],
                        verify=False,
                    )
                elif op == "evict":
                    store.evict(record["workload_id"])
                elif op == "reset":
                    store.reset()
                elif op == "import":
                    store.import_state(record["state"])
                else:
                    raise WalError(
                        f"unknown WAL op {op!r} at seq {record['seq']}"
                    )
            except WalError:
                raise
            except faults.FaultError:
                raise
            except Exception as exc:
                raise WalReplayError(
                    f"replaying {op!r} (seq {record['seq']}) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            expected = record.get("generation")
            if expected is not None and store.generation != expected:
                raise WalReplayError(
                    f"replay diverged at seq {record['seq']}: store "
                    f"generation {store.generation}, journal recorded "
                    f"{expected}"
                )
            applied += 1
            last = record
        if last is not None and isinstance(last.get("counters"), dict):
            store.restore_counters(last["counters"])
        return applied

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, federation) -> dict[str, Any]:
        """Snapshot every durable local shard, then truncate its WAL.

        Ordering is the crash-safety contract: the snapshot (manifest
        written last, atomically) is fully durable *before* any record is
        dropped, and the manifest records each shard's ``wal_seq``
        watermark.  Fault site ``checkpoint.truncate`` fires between the
        two steps - a kill there leaves snapshot + full WAL, and recovery
        skips the already-snapshotted records by watermark.
        """
        from repro.serving import snapshot as snapshots

        with self._lock:
            if self._closed:
                raise WalError("durability controller is closed")
            shards = [
                shard
                for shard in federation.local_shards()
                if shard.store.wal is not None
            ]
            if not shards:
                return {"skipped": "no durable shards", "truncated": 0}
            payloads: dict[str, dict] = {}
            wal_seqs: dict[str, int] = {}
            for shard in shards:
                payload, last_seq = shard.store.export_durable()
                name = shard.store.framework.name
                payloads[name] = payload
                wal_seqs[name] = last_seq
            for shard in shards:
                shard.store.wal.sync()
            try:
                manifest = snapshots.write_snapshot(
                    self.checkpoint_dir, payloads, wal_seqs=wal_seqs
                )
                faults.check("checkpoint.truncate")
                truncated = 0
                for shard in shards:
                    name = shard.store.framework.name
                    truncated += self.wal_for(name).truncate_through(
                        wal_seqs[name]
                    )
            except BaseException as exc:
                self.checkpoints_failed += 1
                self.last_checkpoint_error = (
                    f"{type(exc).__name__}: {exc}"
                )
                raise
            self.checkpoints_run += 1
            return {
                "shards": sorted(wal_seqs),
                "wal_seqs": wal_seqs,
                "truncated": truncated,
                "generations": {
                    e["framework"]: e["generation"]
                    for e in manifest["shards"]
                },
            }

    def start_checkpointer(self, federation, interval_s: float) -> None:
        """Run :meth:`checkpoint` periodically (the sweeper cadence).

        A failing checkpoint is counted and retried next tick; it never
        kills the thread or the serving process.
        """
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.checkpoint(federation)
                except Exception:
                    continue

        self._thread = threading.Thread(
            target=_loop, name="repro-checkpointer", daemon=True
        )
        self._thread.start()

    def stop_checkpointer(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- lifecycle / observability ----------------------------------------

    def sync_all(self) -> None:
        with self._lock:
            wals = list(self._wals.values())
        for wal in wals:
            wal.sync()

    def close(self) -> None:
        self.stop_checkpointer()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            wals = list(self._wals.values())
        for wal in wals:
            wal.close()

    def wal_lag(self) -> int:
        """Records on disk awaiting the next checkpoint (replay debt)."""
        with self._lock:
            return sum(
                wal.records_on_disk for wal in self._wals.values()
            )

    def stats(self) -> dict[str, int]:
        """Integer gauges merged into ``engine.stats()`` (and /metrics)."""
        with self._lock:
            wals = dict(self._wals)
            out = {
                "wal_lag": sum(
                    w.records_on_disk for w in wals.values()
                ),
                "wal_appended": sum(w.appended for w in wals.values()),
                "wal_quarantined_bytes": sum(
                    w.quarantined_bytes for w in wals.values()
                ),
                "checkpoints_run": self.checkpoints_run,
                "checkpoints_failed": self.checkpoints_failed,
                "wal_replayed": self.replayed_records,
            }
        return out

    def health(self) -> dict[str, Any]:
        with self._lock:
            report = {
                "enabled": True,
                "fsync": self.fsync_policy,
                "wal": {
                    name: wal.stats()
                    for name, wal in sorted(self._wals.items())
                },
                "checkpoints_run": self.checkpoints_run,
                "checkpoints_failed": self.checkpoints_failed,
            }
            if self.last_checkpoint_error:
                report["last_checkpoint_error"] = (
                    self.last_checkpoint_error
                )
            if self.recovery_report is not None:
                report["recovery"] = {
                    "replayed": self.recovery_report["replayed"],
                    "snapshot_loaded": self.recovery_report[
                        "snapshot_loaded"
                    ],
                    "wall_s": self.recovery_report["wall_s"],
                }
        return report

"""Remote shard processes: DebloatStores behind a length-prefixed protocol.

One process can only hold so many debloated framework builds; this module
lets a :class:`~repro.api.federation.StoreFederation` push store shards
into **worker processes**.  Each worker (``python -m repro.serving.remote``)
hosts one :class:`~repro.serving.store.DebloatStore` per framework/build
fingerprint and speaks a minimal request/response protocol over its
stdin/stdout pipes: 4-byte little-endian length prefix + one RDBC container
(:func:`~repro.core.serialize.value_dumps`) per frame, so every message
inherits the container's magic/version/CRC checking and ships NumPy
payloads (usage unions, library extents) without copies through JSON.

Parent-side layers, bottom up:

* :class:`RemoteShardProcess` - one spawned worker + the framed transport.
  Every send/recv runs under a per-operation deadline (``select``-driven
  non-blocking pipe I/O), so a worker that wedges mid-frame surfaces as a
  timeout instead of blocking its caller forever.  Any transport failure
  (dead process, truncated frame, deadline expiry, injected
  ``remote.send``/``remote.recv`` fault) marks the process broken and
  raises :class:`~repro.errors.RemoteShardError` - a
  :class:`~repro.errors.TransientError`, so the serving tier's retry
  policy re-drives the call instead of surfacing a raw ``OSError``.
* :class:`RemoteShardSupervisor` - owns one worker slot: lazy spawn
  (``shard.spawn`` fault site), crash detection, and **warm restart**: a
  replacement worker imports the shard's last exported snapshot on boot
  (zero workload runs), then the supervisor replays the
  committed-but-unexported tail of its parent-side admission ledger.
  Workers auto-export after every committed mutation, so that tail is at
  most the admission that was in flight when the worker died - and
  re-admission is idempotent, so the retried call converges on a store
  byte-identical to a crash-free run.  The supervisor also runs the
  liveness layer: :meth:`~RemoteShardSupervisor.heartbeat` probes the
  worker's ``ping`` op (``remote.heartbeat`` fault site), and a
  per-worker **circuit breaker** opens after a threshold of consecutive
  transport failures - calls fast-fail with :class:`RemoteShardError`
  for a cooldown, then one half-open probe either closes the breaker or
  re-opens it.  Fast-fails are transient, so the federation degrades
  the shard to ``recovering`` and serves last-good snapshots instead of
  stalling on a hung worker.
* :class:`RemoteStoreClient` - the duck-typed ``DebloatStore`` surface
  (``admit`` / ``admit_many`` / ``evict`` / ``snapshot`` / ``report`` /
  ``stats`` / ``export_state`` / ``import_state``) for one framework on
  one supervisor, so :class:`~repro.api.federation.FederationShard` fronts
  a local store and a remote worker interchangeably.
* :class:`RemoteShardPool` - N supervisors plus the :class:`HashRing`
  that consistently routes framework-build fingerprints onto them.

Workers deliberately do **not** activate ``REPRO_FAULT_PLAN``: the
instrumented boundary is the parent side (send/recv/spawn/snapshot.read),
and keeping workers fault-free makes injected-fault runs deterministic.
"""

from __future__ import annotations

import bisect
import json
import os
import select
import signal
import struct
import subprocess
import sys
import threading
import time
from types import MappingProxyType

from repro.core import serialize
from repro.errors import (
    CacheDecodeError,
    FaultError,
    RemoteShardError,
    ReproError,
    SnapshotError,
    TransientError,
    UsageError,
)
from repro.serving.store import (
    AdmissionResult,
    EvictionResult,
    StoreSnapshot,
)
from repro.testing import faults

#: Frame payload kinds (the RDBC container's ``kind`` field, checked on
#: both ends so a desynchronized stream fails loudly).
REMOTE_REQUEST_KIND = "remote_shard_request"
REMOTE_RESPONSE_KIND = "remote_shard_response"

_LEN = struct.Struct("<I")

#: Sanity bound on a single frame (a full paper-scale store image is far
#: below this; anything larger means a desynchronized stream).
MAX_FRAME_BYTES = 1 << 30


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def write_frame(stream, payload: dict, kind: str) -> None:
    """Serialize ``payload`` as one length-prefixed RDBC frame."""
    blob = serialize.value_dumps(payload, kind)
    stream.write(_LEN.pack(len(blob)) + blob)
    stream.flush()


def read_frame(stream, kind: str) -> dict:
    """Read one frame; raises ``EOFError`` on a closed/truncated stream."""
    header = _read_exact(stream, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CacheDecodeError(
            f"remote frame claims {length} bytes (stream desynchronized)"
        )
    return serialize.value_loads(_read_exact(stream, length), kind)


def _read_exact(stream, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(
                f"remote stream closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# result payloads (scalars; the heavyweight pieces live in serialize.py)
# ---------------------------------------------------------------------------


def admission_to_payload(result: AdmissionResult) -> dict:
    return {
        "workload_id": result.workload_id,
        "generation": result.generation,
        "new_kernels": result.new_kernels,
        "new_functions": result.new_functions,
        "recompacted": list(result.recompacted),
        "untouched": list(result.untouched),
        "added_libraries": list(result.added_libraries),
        "union_file_size": result.union_file_size,
        "union_file_size_after": result.union_file_size_after,
        "detection_run_s": result.detection_run_s,
        "locate_compact_s": result.locate_compact_s,
        "detection_cached": result.detection_cached,
        "duplicate": result.duplicate,
        "verification": serialize.verification_to_payload(
            result.verification
        ),
    }


def admission_from_payload(p: dict) -> AdmissionResult:
    return AdmissionResult(
        workload_id=p["workload_id"],
        generation=int(p["generation"]),
        new_kernels=int(p["new_kernels"]),
        new_functions=int(p["new_functions"]),
        recompacted=tuple(p["recompacted"]),
        untouched=tuple(p["untouched"]),
        added_libraries=tuple(p["added_libraries"]),
        union_file_size=int(p["union_file_size"]),
        union_file_size_after=int(p["union_file_size_after"]),
        detection_run_s=float(p["detection_run_s"]),
        locate_compact_s=float(p["locate_compact_s"]),
        detection_cached=bool(p["detection_cached"]),
        duplicate=bool(p["duplicate"]),
        verification=serialize.verification_from_payload(p["verification"]),
    )


def eviction_to_payload(result: EvictionResult) -> dict:
    return {
        "workload_id": result.workload_id,
        "generation": result.generation,
        "removed_admissions": result.removed_admissions,
        "recompacted": list(result.recompacted),
        "dropped_libraries": list(result.dropped_libraries),
    }


def eviction_from_payload(p: dict) -> EvictionResult:
    return EvictionResult(
        workload_id=p["workload_id"],
        generation=int(p["generation"]),
        removed_admissions=int(p["removed_admissions"]),
        recompacted=tuple(p["recompacted"]),
        dropped_libraries=tuple(p["dropped_libraries"]),
    )


def store_snapshot_to_payload(snap: StoreSnapshot) -> dict:
    """A snapshot *summary*: counts and reductions, not library bytes.

    Serving reads (``/v1/snapshot``, health aggregation, eviction
    accounting) only consume the summary; library bytes cross the
    boundary through store images (pull/push), never per read.
    """
    return {
        "generation": snap.generation,
        "workload_ids": list(snap.workload_ids),
        "union_kernels": snap.union_kernels,
        "union_functions": snap.union_functions,
        "reductions": [
            serialize.library_to_payload(r) for r in snap.reductions
        ],
    }


def store_snapshot_from_payload(p: dict) -> StoreSnapshot:
    return StoreSnapshot(
        generation=int(p["generation"]),
        workload_ids=tuple(p["workload_ids"]),
        libraries=MappingProxyType({}),
        union_kernels=int(p["union_kernels"]),
        union_functions=int(p["union_functions"]),
        reductions=tuple(
            serialize.library_from_payload(r) for r in p["reductions"]
        ),
    )


_EMPTY_SNAPSHOT = StoreSnapshot(
    generation=0,
    workload_ids=(),
    libraries=MappingProxyType({}),
    union_kernels=0,
    union_functions=0,
    reductions=(),
)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class ShardWorker:
    """The in-worker service: one store per framework, plus auto-export."""

    def __init__(self, config: dict) -> None:
        self.name = config.get("name", "shard")
        self.scale = float(config["scale"])
        self.archs = tuple(int(a) for a in config["archs"])
        self.use_cache = bool(config.get("use_cache", True))
        self.snapshot_dir = config.get("snapshot_dir")
        self._stores: dict[str, object] = {}

    def store(self, framework_name: str):
        from repro.frameworks.catalog import get_framework
        from repro.serving.store import DebloatStore

        store = self._stores.get(framework_name)
        if store is None:
            framework = get_framework(
                framework_name, scale=self.scale, archs=self.archs
            )
            store = DebloatStore(framework, use_cache=self.use_cache)
            self._stores[framework_name] = store
        return store

    def restore(self) -> None:
        """Warm boot: import the last exported snapshot, if one exists.

        A missing or unusable snapshot means a cold start - the
        supervisor's ledger replay covers the difference - so every
        failure here is swallowed after a note to stderr.
        """
        from repro.serving import snapshot as snapshot_mod

        if not self.snapshot_dir or not snapshot_mod.snapshot_exists(
            self.snapshot_dir
        ):
            return
        try:
            for name, payload in snapshot_mod.load_snapshot(
                self.snapshot_dir
            ).items():
                self.store(name).import_state(payload)
        except (SnapshotError, ReproError, OSError) as exc:
            self._stores.clear()
            print(
                f"[{self.name}] snapshot restore failed, starting cold: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )

    def export(self) -> dict | None:
        """Write every store's current epoch to the snapshot directory."""
        from repro.serving import snapshot as snapshot_mod

        if not self.snapshot_dir:
            return None
        return snapshot_mod.write_snapshot(
            self.snapshot_dir,
            {
                name: store.export_state()
                for name, store in self._stores.items()
            },
        )

    # -- request dispatch -----------------------------------------------------

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise UsageError(f"unknown remote op {op!r}")
        return handler(request)

    def _mutated(self) -> None:
        self.export()

    def _op_ping(self, request: dict) -> dict:
        return {"pid": os.getpid(), "frameworks": sorted(self._stores)}

    def _op_admit(self, request: dict) -> dict:
        store = self.store(request["framework"])
        spec = serialize.spec_from_payload(request["spec"])
        result = store.admit(spec, verify=bool(request.get("verify")))
        self._mutated()
        return {"result": admission_to_payload(result)}

    def _op_admit_many(self, request: dict) -> dict:
        store = self.store(request["framework"])
        specs = [
            serialize.spec_from_payload(p) for p in request["specs"]
        ]
        results = store.admit_many(specs, verify=bool(request.get("verify")))
        self._mutated()
        return {"results": [admission_to_payload(r) for r in results]}

    def _op_evict(self, request: dict) -> dict:
        store = self.store(request["framework"])
        result = store.evict(request["workload_id"])
        self._mutated()
        return {"result": eviction_to_payload(result)}

    def _op_reset(self, request: dict) -> dict:
        self.store(request["framework"]).reset()
        self._mutated()
        return {}

    def _op_snapshot(self, request: dict) -> dict:
        store = self._stores.get(request["framework"])
        snap = store.snapshot() if store is not None else _EMPTY_SNAPSHOT
        return {"snapshot": store_snapshot_to_payload(snap)}

    def _op_stats(self, request: dict) -> dict:
        store = self._stores.get(request["framework"])
        return {"stats": dict(store.stats()) if store is not None else {}}

    def _op_admitted(self, request: dict) -> dict:
        store = self._stores.get(request["framework"])
        specs = store.admitted_specs() if store is not None else ()
        return {"specs": [serialize.spec_to_payload(s) for s in specs]}

    def _op_report(self, request: dict) -> dict:
        store = self.store(request["framework"])
        report = store.report(
            verify=request.get("verify"), strict=request.get("strict")
        )
        return {"report": serialize.multi_report_to_payload(report)}

    def _op_pull_state(self, request: dict) -> dict:
        return {"state": self.store(request["framework"]).export_state()}

    def _op_push_state(self, request: dict) -> dict:
        self.store(request["framework"]).import_state(request["state"])
        self._mutated()
        return {}

    def _op_export_snapshot(self, request: dict) -> dict:
        return {"manifest": self.export()}


def serve(worker: ShardWorker, inp, out) -> None:
    """The worker main loop: read a frame, dispatch, answer, repeat."""
    while True:
        try:
            request = read_frame(inp, REMOTE_REQUEST_KIND)
        except EOFError:
            return  # parent closed the pipe: clean shutdown
        if request.get("op") == "shutdown":
            write_frame(out, {"ok": True, "value": {}}, REMOTE_RESPONSE_KIND)
            return
        try:
            value = worker.handle(request)
            response = {"ok": True, "value": value}
        except Exception as exc:  # ship the failure, keep serving
            error = {
                "type": type(exc).__name__,
                "message": str(exc),
                "transient": isinstance(exc, (TransientError, OSError)),
            }
            if isinstance(exc, FaultError):
                error.update(
                    site=exc.site, ordinal=exc.ordinal, kind=exc.kind
                )
            response = {"ok": False, "error": error}
        write_frame(out, response, REMOTE_RESPONSE_KIND)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2 or argv[0] != "--config":
        print("usage: python -m repro.serving.remote --config JSON",
              file=sys.stderr)
        return 2
    config = json.loads(argv[1])
    # The protocol owns fd 0/1; stray prints must not corrupt frames.
    inp = os.fdopen(os.dup(0), "rb", buffering=0)
    out = os.fdopen(os.dup(1), "wb", buffering=0)
    sys.stdout = sys.stderr
    worker = ShardWorker(config)
    worker.restore()
    serve(worker, inp, out)
    return 0


# ---------------------------------------------------------------------------
# parent side: process, supervisor, client, ring, pool
# ---------------------------------------------------------------------------


def _wait_fd(fd: int, writable: bool, deadline: float | None) -> None:
    """Block until ``fd`` is ready (or raise ``TimeoutError`` at deadline)."""
    while True:
        timeout = None
        if deadline is not None:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise TimeoutError("per-operation deadline exceeded")
        rlist, wlist, _ = select.select(
            [] if writable else [fd],
            [fd] if writable else [],
            [],
            timeout,
        )
        if rlist or wlist:
            return


class RemoteShardProcess:
    """One spawned worker plus the framed transport to it.

    ``call`` serializes concurrent users behind a lock (the worker
    processes one request at a time anyway).  The pipes run non-blocking
    with ``select``-paced I/O, so ``op_deadline_s`` bounds every
    send+recv: a wedged worker raises instead of hanging its caller.
    Any transport failure marks the process ``broken`` - the stream may
    be desynchronized, so the only safe recovery is a supervisor
    restart - and surfaces as :class:`RemoteShardError`.
    """

    def __init__(
        self,
        name: str,
        config: dict,
        op_deadline_s: float | None = None,
    ) -> None:
        self.name = name
        self.broken = False
        self.op_deadline_s = op_deadline_s
        self._lock = threading.Lock()
        faults.check("shard.spawn")
        # bufsize=0: the pipes stay raw file objects, so the select-based
        # deadline loops below see every byte the OS sees (a Python-side
        # buffer would make readiness lie).
        self._proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.remote",
                "--config",
                json.dumps(config),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            bufsize=0,
        )
        os.set_blocking(self._proc.stdin.fileno(), False)
        os.set_blocking(self._proc.stdout.fileno(), False)
        self.pid = self._proc.pid

    @property
    def alive(self) -> bool:
        return not self.broken and self._proc.poll() is None

    def call(
        self, op: str, _deadline_s: float | None = None, **args
    ) -> dict:
        request = {"op": op, **args}
        deadline_s = (
            _deadline_s if _deadline_s is not None else self.op_deadline_s
        )
        with self._lock:
            if not self.alive:
                raise RemoteShardError(
                    self.name, "worker process is not running"
                )
            deadline = (
                time.monotonic() + deadline_s
                if deadline_s is not None
                else None
            )
            try:
                faults.check("remote.send")
                self._send_frame(request, REMOTE_REQUEST_KIND, deadline)
                faults.check("remote.recv")
                response = self._recv_frame(
                    REMOTE_RESPONSE_KIND, deadline
                )
            except Exception as exc:
                # Dead worker, truncated frame, expired deadline, or an
                # injected send/recv fault: either way the stream can no
                # longer be trusted - poison the process so the
                # supervisor restarts it, and raise the retryable error.
                self.broken = True
                raise RemoteShardError(
                    self.name, f"{type(exc).__name__}: {exc}"
                ) from exc
        if not response.get("ok"):
            _raise_remote_error(self.name, response.get("error") or {})
        return response.get("value") or {}

    def _send_frame(
        self, payload: dict, kind: str, deadline: float | None
    ) -> None:
        blob = serialize.value_dumps(payload, kind)
        fd = self._proc.stdin.fileno()
        view = memoryview(_LEN.pack(len(blob)) + blob)
        while view:
            _wait_fd(fd, True, deadline)
            try:
                written = os.write(fd, view)
            except BlockingIOError:
                continue
            view = view[written:]

    def _recv_frame(self, kind: str, deadline: float | None) -> dict:
        header = self._read_exact(_LEN.size, deadline)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise CacheDecodeError(
                f"remote frame claims {length} bytes "
                f"(stream desynchronized)"
            )
        return serialize.value_loads(
            self._read_exact(length, deadline), kind
        )

    def _read_exact(self, n: int, deadline: float | None) -> bytes:
        fd = self._proc.stdout.fileno()
        chunks = []
        remaining = n
        while remaining:
            _wait_fd(fd, False, deadline)
            try:
                chunk = os.read(fd, remaining)
            except BlockingIOError:
                continue
            if not chunk:
                raise EOFError(
                    f"remote stream closed with {remaining} of {n} "
                    f"bytes unread"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def kill(self) -> None:
        """SIGKILL the worker (crash simulation / hard teardown)."""
        if self._proc.poll() is None:
            try:
                os.kill(self.pid, signal.SIGKILL)
            except OSError:
                pass
        self._proc.wait()
        self._close_pipes()

    def shutdown(self) -> None:
        """Graceful stop; falls back to kill on any transport trouble."""
        try:
            self.call("shutdown")
        except ReproError:
            pass
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.kill()
            return
        self._close_pipes()

    def _close_pipes(self) -> None:
        for stream in (self._proc.stdin, self._proc.stdout):
            try:
                stream.close()
            except OSError:
                pass


def _raise_remote_error(shard: str, error: dict):
    """Re-raise a worker-side failure with its original type when possible."""
    from repro import errors as errors_mod

    name = error.get("type", "Exception")
    message = error.get("message", "")
    if name == "FaultError":
        raise FaultError(
            error.get("site", "remote"),
            int(error.get("ordinal", 0)),
            error.get("kind", "fault"),
        )
    cls = getattr(errors_mod, name, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls is not RemoteShardError
    ):
        try:
            raise cls(message)
        except TypeError:
            pass  # multi-argument constructor: fall through to the wrappers
    if error.get("transient"):
        raise RemoteShardError(shard, f"{name}: {message}")
    raise UsageError(f"remote shard {shard!r}: {name}: {message}")


class HashRing:
    """Consistent hashing of build fingerprints onto worker names.

    Virtual nodes keyed by :func:`~repro.core.serialize.stable_digest`
    make the mapping deterministic across processes and balanced across
    workers; adding or removing one worker only remaps the keys on its
    arcs, which is what lets a grown pool keep most shards warm.
    """

    def __init__(self, nodes, replicas: int = 64) -> None:
        if not nodes:
            raise UsageError("hash ring needs at least one node")
        points = sorted(
            (serialize.stable_digest("hash-ring", node, i), node)
            for node in nodes
            for i in range(replicas)
        )
        self._digests = [digest for digest, _ in points]
        self._nodes = [node for _, node in points]

    def node_for(self, key: str) -> str:
        digest = serialize.stable_digest("hash-ring-key", key)
        idx = bisect.bisect_right(self._digests, digest) % len(self._nodes)
        return self._nodes[idx]


class RemoteShardSupervisor:
    """One worker slot: lazy spawn, crash detection, warm restart.

    Also the liveness layer: per-op deadlines are threaded into the
    spawned :class:`RemoteShardProcess`, :meth:`heartbeat` probes the
    worker's ``ping`` op, and a circuit breaker trips after
    ``breaker_threshold`` consecutive *transport* failures (worker-side
    application errors ride a healthy transport and never count).  An
    open breaker fast-fails calls with :class:`RemoteShardError` until
    ``breaker_cooldown_s`` elapses, then goes half-open: the next call
    is the probe - success closes the breaker, failure re-opens it.
    """

    def __init__(
        self,
        name: str,
        config: dict,
        *,
        op_deadline_s: float | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self._config = dict(config, name=name)
        self._lock = threading.RLock()
        self._proc: RemoteShardProcess | None = None
        self.restarts = 0
        #: framework -> the admission sequence this shard has committed,
        #: mirrored parent-side so a restart can replay the tail that
        #: missed the worker's last snapshot export.
        self._ledgers: dict[str, list] = {}
        self.op_deadline_s = op_deadline_s
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._breaker_clock = clock
        #: ``closed`` / ``open`` / ``half-open``.
        self.breaker_state = "closed"
        self.breaker_trips = 0
        self._breaker_failures = 0
        self._breaker_opened_at = 0.0
        self.heartbeats = 0
        self.heartbeat_failures = 0
        self.last_heartbeat_error: str | None = None

    @property
    def snapshot_dir(self) -> str | None:
        return self._config.get("snapshot_dir")

    @property
    def alive(self) -> bool:
        proc = self._proc
        return proc is not None and proc.alive

    @property
    def pid(self) -> int | None:
        proc = self._proc
        return proc.pid if proc is not None else None

    def process(self) -> RemoteShardProcess:
        """The live worker, spawning (and warm-restoring) as needed."""
        with self._lock:
            if self._proc is not None and not self._proc.alive:
                self._proc.kill()
                self._proc = None
                self.restarts += 1
            if self._proc is None:
                # The worker imports its own snapshot on boot; the
                # parent then replays whatever the snapshot missed.
                self._proc = RemoteShardProcess(
                    self.name,
                    self._config,
                    op_deadline_s=self.op_deadline_s,
                )
                try:
                    self._replay_locked(self._proc)
                except BaseException:
                    self._proc.broken = True
                    raise
            return self._proc

    def call(
        self, op: str, _deadline_s: float | None = None, **args
    ) -> dict:
        self._breaker_admit()
        try:
            value = self.process().call(op, _deadline_s=_deadline_s, **args)
        except RemoteShardError:
            # Only transport-level failures feed the breaker: a
            # worker-relayed transient rides a healthy (unbroken, alive)
            # transport and is the retry policy's business.
            proc = self._proc
            if proc is None or proc.broken or not proc.alive:
                self._breaker_failure()
            raise
        self._breaker_success()
        return value

    # -- circuit breaker ------------------------------------------------------

    def _breaker_admit(self) -> None:
        if self._breaker_threshold is None:
            return
        with self._lock:
            if self.breaker_state != "open":
                return
            elapsed = self._breaker_clock() - self._breaker_opened_at
            if elapsed < self._breaker_cooldown_s:
                raise RemoteShardError(
                    self.name,
                    f"circuit breaker open "
                    f"({self._breaker_failures} consecutive failures; "
                    f"half-open probe in "
                    f"{self._breaker_cooldown_s - elapsed:.2f}s)",
                )
            # Cooldown served: this caller becomes the half-open probe.
            self.breaker_state = "half-open"

    def _breaker_failure(self) -> None:
        if self._breaker_threshold is None:
            return
        with self._lock:
            self._breaker_failures += 1
            if (
                self.breaker_state == "half-open"
                or self._breaker_failures >= self._breaker_threshold
            ):
                if self.breaker_state != "open":
                    self.breaker_trips += 1
                self.breaker_state = "open"
                self._breaker_opened_at = self._breaker_clock()

    def _breaker_success(self) -> None:
        if self._breaker_threshold is None:
            return
        with self._lock:
            self._breaker_failures = 0
            self.breaker_state = "closed"

    # -- heartbeat ------------------------------------------------------------

    def heartbeat(self, deadline_s: float | None = None) -> dict:
        """One liveness probe against a *running* worker (never spawns).

        Routes through the worker's ``ping`` op under the usual per-op
        deadline; an idle slot (no worker yet) reports ``idle`` without
        spawning one.  Failures count toward the circuit breaker exactly
        like a real call's transport failure, so a hung worker's breaker
        opens even when no admission traffic is flowing.  Fault site
        ``remote.heartbeat`` fires before the probe.
        """
        with self._lock:
            proc = self._proc
        if proc is None:
            return {"state": "idle", "ok": True}
        try:
            faults.check("remote.heartbeat")
            self._breaker_admit()
            value = proc.call("ping", _deadline_s=deadline_s)
        except (TransientError, OSError) as exc:
            message = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self.heartbeat_failures += 1
                self.last_heartbeat_error = message
            if proc.broken or not proc.alive:
                self._breaker_failure()
            return {"state": "failed", "ok": False, "error": message}
        with self._lock:
            self.heartbeats += 1
        self._breaker_success()
        return {"state": "ok", "ok": True, "pid": value.get("pid")}

    def _replay_locked(self, proc: RemoteShardProcess) -> None:
        """Re-admit the ledger tail a fresh worker's snapshot lacks.

        Usage is served from the warm pipeline cache the worker
        inherits, so replay costs no workload runs either; and because
        admission order and content are replayed exactly, the recovered
        store is byte-identical to one that never crashed.
        """
        for framework, ledger in self._ledgers.items():
            if not ledger:
                continue
            wanted = [serialize.spec_to_payload(s) for s in ledger]
            have = proc.call("admitted", framework=framework)["specs"]
            if have == wanted:
                continue
            if have == wanted[: len(have)]:
                missing = ledger[len(have):]
            else:  # diverged image (stale/foreign snapshot): rebuild
                proc.call("reset", framework=framework)
                missing = ledger
            proc.call(
                "admit_many",
                framework=framework,
                specs=[serialize.spec_to_payload(s) for s in missing],
                verify=False,
            )

    # -- ledger bookkeeping (called by the client after committed ops) -------

    def record_admissions(self, framework: str, specs) -> None:
        with self._lock:
            self._ledgers.setdefault(framework, []).extend(specs)

    def record_eviction(self, framework: str, workload_id: str) -> None:
        with self._lock:
            ledger = self._ledgers.get(framework, [])
            self._ledgers[framework] = [
                s for s in ledger if s.workload_id != workload_id
            ]

    def record_state(self, framework: str, specs) -> None:
        with self._lock:
            self._ledgers[framework] = list(specs)

    def kill(self) -> None:
        """SIGKILL the worker if running (tests / fault drills)."""
        with self._lock:
            if self._proc is not None:
                self._proc.kill()

    def shutdown(self) -> None:
        with self._lock:
            if self._proc is not None:
                self._proc.shutdown()
                self._proc = None


class RemoteStoreClient:
    """The ``DebloatStore`` duck-type for one framework on one supervisor."""

    def __init__(self, supervisor: RemoteShardSupervisor,
                 framework_name: str) -> None:
        self._sup = supervisor
        self.framework_name = framework_name
        self.last_error: str | None = None

    @property
    def worker(self) -> str:
        return self._sup.name

    def _call(self, op: str, **args) -> dict:
        try:
            return self._sup.call(op, framework=self.framework_name, **args)
        except ReproError as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            raise

    def admit(self, spec, verify: bool = False) -> AdmissionResult:
        value = self._call(
            "admit", spec=serialize.spec_to_payload(spec), verify=verify
        )
        self._sup.record_admissions(self.framework_name, [spec])
        return admission_from_payload(value["result"])

    def admit_many(self, specs, verify: bool = False):
        value = self._call(
            "admit_many",
            specs=[serialize.spec_to_payload(s) for s in specs],
            verify=verify,
        )
        self._sup.record_admissions(self.framework_name, list(specs))
        return [admission_from_payload(p) for p in value["results"]]

    def evict(self, workload_id: str) -> EvictionResult:
        value = self._call("evict", workload_id=workload_id)
        self._sup.record_eviction(self.framework_name, workload_id)
        return eviction_from_payload(value["result"])

    def reset(self) -> None:
        self._call("reset")
        self._sup.record_state(self.framework_name, [])

    def snapshot(self) -> StoreSnapshot:
        return store_snapshot_from_payload(self._call("snapshot")["snapshot"])

    @property
    def generation(self) -> int:
        return self.snapshot().generation

    def stats(self) -> dict:
        return self._call("stats")["stats"]

    def report(self, verify=None, strict=None):
        value = self._call("report", verify=verify, strict=strict)
        return serialize.multi_report_from_payload(value["report"])

    def export_state(self) -> dict:
        """Pull the worker's committed store image (snapshot export)."""
        return self._call("pull_state")["state"]

    def import_state(self, payload: dict) -> None:
        """Push a store image into the worker (snapshot import)."""
        serialize._check_store_payload(payload)
        self._call("push_state", state=payload)
        self._sup.record_state(
            self.framework_name,
            [
                serialize.spec_from_payload(p)
                for p in payload.get("admissions", [])
            ],
        )


class RemoteShardPool:
    """N remote shard workers plus the consistent-hash routing over them."""

    def __init__(
        self,
        count: int,
        *,
        scale: float,
        archs,
        use_cache: bool = True,
        snapshot_root: str | None = None,
        op_deadline_s: float | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown_s: float = 5.0,
        heartbeat_interval_s: float | None = None,
    ) -> None:
        if count < 1:
            raise UsageError("remote shard pool needs at least one worker")
        self.snapshot_root = snapshot_root
        self.supervisors: dict[str, RemoteShardSupervisor] = {}
        for i in range(count):
            name = f"shard-{i}"
            self.supervisors[name] = RemoteShardSupervisor(
                name,
                {
                    "scale": scale,
                    "archs": list(archs),
                    "use_cache": use_cache,
                    "snapshot_dir": (
                        os.path.join(snapshot_root, name)
                        if snapshot_root
                        else None
                    ),
                },
                op_deadline_s=op_deadline_s,
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
            )
        self._ring = HashRing(sorted(self.supervisors))
        self._clients: dict[str, RemoteStoreClient] = {}
        self._lock = threading.Lock()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        if heartbeat_interval_s is not None:
            self.start_heartbeats(heartbeat_interval_s)

    def node_for(self, fingerprint: str) -> str:
        return self._ring.node_for(fingerprint)

    def client_for(
        self, framework_name: str, fingerprint: str
    ) -> RemoteStoreClient:
        with self._lock:
            client = self._clients.get(framework_name)
            if client is None:
                supervisor = self.supervisors[self.node_for(fingerprint)]
                client = RemoteStoreClient(supervisor, framework_name)
                self._clients[framework_name] = client
            return client

    def supervisor_for(self, framework_name: str) -> RemoteShardSupervisor:
        client = self._clients.get(framework_name)
        if client is None:
            raise UsageError(
                f"no remote client for {framework_name!r} yet"
            )
        return client._sup

    def start_heartbeats(self, interval_s: float) -> None:
        """Probe every supervisor's worker on a cadence (daemon thread)."""
        if self._hb_thread is not None:
            return
        self._hb_stop.clear()

        def _loop() -> None:
            while not self._hb_stop.wait(interval_s):
                for sup in list(self.supervisors.values()):
                    try:
                        sup.heartbeat()
                    except Exception:
                        continue

        self._hb_thread = threading.Thread(
            target=_loop, name="repro-heartbeat", daemon=True
        )
        self._hb_thread.start()

    def stop_heartbeats(self) -> None:
        if self._hb_thread is None:
            return
        self._hb_stop.set()
        self._hb_thread.join(timeout=5.0)
        self._hb_thread = None

    def health(self) -> dict:
        rows = {
            name: {
                "alive": sup.alive,
                "pid": sup.pid,
                "restarts": sup.restarts,
                "snapshot_dir": sup.snapshot_dir,
                "breaker": sup.breaker_state,
                "breaker_trips": sup.breaker_trips,
                "heartbeats": sup.heartbeats,
                "heartbeat_failures": sup.heartbeat_failures,
            }
            for name, sup in self.supervisors.items()
        }
        return {
            "workers": len(self.supervisors),
            "alive": sum(1 for row in rows.values() if row["alive"]),
            "restarts": sum(row["restarts"] for row in rows.values()),
            "breakers_open": sum(
                1 for row in rows.values() if row["breaker"] == "open"
            ),
            "shards": rows,
        }

    def shutdown(self) -> None:
        self.stop_heartbeats()
        for sup in self.supervisors.values():
            sup.shutdown()


if __name__ == "__main__":
    sys.exit(main())

"""Request-queue + worker-pool front-end over a :class:`DebloatStore`.

The serving story: workloads arrive over time, each admission's expensive
part (the fused instrumented detection run) is independent of the store,
and only the union merge + delta compaction must serialize.  The server
keeps a bounded worker pool draining a request queue; workers overlap
their detection runs and the store's admission lock orders the merges.
Readers never queue - :meth:`snapshot` returns the store's current
immutable epoch directly.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.errors import UsageError
from repro.serving.store import AdmissionResult, DebloatStore, StoreSnapshot
from repro.workloads.spec import WorkloadSpec


@dataclass
class AdmissionTicket:
    """A pending admission: resolves to a result or re-raises the failure."""

    spec: WorkloadSpec
    _done: threading.Event = field(default_factory=threading.Event)
    _result: AdmissionResult | None = None
    _error: BaseException | None = None
    #: Wall-clock seconds from submit to completion (queueing included).
    latency_s: float | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> AdmissionResult:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"admission of {self.spec.workload_id} still pending"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(
        self,
        started: float,
        result: AdmissionResult | None,
        error: BaseException | None,
    ) -> None:
        self.latency_s = time.perf_counter() - started
        self._result = result
        self._error = error
        self._done.set()


_SHUTDOWN = object()


class DebloatServer:
    """Admission workers over one shared store."""

    def __init__(
        self,
        store: DebloatStore,
        workers: int = 2,
        verify: bool = False,
    ) -> None:
        if workers < 1:
            raise UsageError("DebloatServer needs at least one worker")
        self.store = store
        self.verify = verify
        self._queue: queue.Queue = queue.Queue()
        # Orders submit() against close(): a ticket must never land behind
        # the shutdown sentinels (it would hang its waiter forever), and
        # the served/failed counters are bumped from N worker threads.
        self._state_lock = threading.Lock()
        self._closed = False
        self._served = 0
        self._failed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"debloat-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission -----------------------------------------------------------

    def submit(self, spec: WorkloadSpec) -> AdmissionTicket:
        """Enqueue one admission; returns immediately with a ticket."""
        with self._state_lock:
            if self._closed:
                raise UsageError("server is closed")
            ticket = AdmissionTicket(spec)
            self._queue.put((ticket, time.perf_counter()))
        return ticket

    def admit(
        self, spec: WorkloadSpec, timeout: float | None = None
    ) -> AdmissionResult:
        """Submit and block until the admission completes."""
        return self.submit(spec).result(timeout)

    def admit_all(
        self, specs: list[WorkloadSpec], timeout: float | None = None
    ) -> list[AdmissionResult]:
        """Submit a batch and wait for all, preserving submission order."""
        tickets = [self.submit(spec) for spec in specs]
        return [t.result(timeout) for t in tickets]

    # -- readers --------------------------------------------------------------

    def snapshot(self) -> StoreSnapshot:
        return self.store.snapshot()

    def stats(self) -> dict[str, int]:
        return {
            **self.store.stats(),
            "workers": len(self._threads),
            "pending": self._queue.qsize(),
            "served": self._served,
            "failed": self._failed,
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drain the queue, stop the workers, and reject new submissions."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            # Sentinels enqueue under the same lock as tickets, so every
            # submitted ticket precedes them and gets drained before the
            # workers exit.
            for _ in self._threads:
                self._queue.put(_SHUTDOWN)
        for t in self._threads:
            t.join()

    def __enter__(self) -> "DebloatServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            ticket, started = item
            try:
                result = self.store.admit(ticket.spec, verify=self.verify)
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                with self._state_lock:
                    self._failed += 1
                ticket._resolve(started, None, exc)
            else:
                with self._state_lock:
                    self._served += 1
                ticket._resolve(started, result, None)

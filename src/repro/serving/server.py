"""Request-queue + worker-pool front-end over a store or federation.

The serving story: workloads arrive over time, each admission's expensive
part (the fused instrumented detection run) is independent of the store,
and only the union merge + delta compaction must serialize.  The server
keeps a bounded worker pool draining a request queue; workers overlap
their detection runs and the store's admission lock orders the merges.
Readers never queue - :meth:`snapshot` returns the store's current
immutable epoch directly.

The target is anything with the store admission surface - a single
:class:`DebloatStore` or a multi-framework
:class:`~repro.api.federation.StoreFederation` (the engine facade fronts
the latter); the server itself is routing-agnostic.

With ``batch_max > 1`` a worker that picks up a request also drains
whatever else is already queued (up to the cap) and admits the whole batch
through :meth:`DebloatStore.admit_many` - one union merge and one delta
locate/compact pass per grown library instead of one per admission.  Each
ticket still resolves to its own :class:`AdmissionResult`; a batch whose
specs fail upfront validation falls back to per-spec admission so one bad
request never poisons its queue neighbours.

With ``sweep_interval_s`` set (and a ``sweep()``-capable target), a
background sweeper thread periodically applies the federation's
traffic-driven eviction policy - the ROADMAP's TTL/eviction story - so
idle workloads age out of a long-running server without any caller
driving eviction explicitly.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    AdmissionError,
    ServerClosedError,
    TicketTimeoutError,
    UsageError,
)
from repro.serving.store import AdmissionResult, DebloatStore, StoreSnapshot
from repro.testing import faults
from repro.utils.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.workloads.spec import WorkloadSpec


@dataclass
class AdmissionTicket:
    """A pending admission: resolves to a result or re-raises the failure."""

    spec: WorkloadSpec
    _done: threading.Event = field(default_factory=threading.Event)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _result: AdmissionResult | None = None
    _error: BaseException | None = None
    _error_tb: object = None
    #: Wall-clock seconds from submit to completion (queueing included).
    latency_s: float | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> AdmissionResult:
        """Block for the outcome; raise it if the admission failed.

        Raises :class:`~repro.errors.TicketTimeoutError` (a
        :class:`TimeoutError` subclass) when ``timeout`` expires first;
        the ticket stays valid and a later call can still succeed.
        Failures re-raise as a fresh per-call copy: raising the one
        stored exception object would let every waiter's propagation
        frames pile onto the shared ``__traceback__``.
        """
        if not self._done.wait(timeout):
            raise TicketTimeoutError(
                f"admission of {self.spec.workload_id} still pending "
                f"after {timeout}s"
            )
        if self._error is not None:
            raise self._error_copy()
        assert self._result is not None
        return self._result

    def _error_copy(self) -> BaseException:
        """A same-type clone of the stored error, carrying the worker's
        traceback but owning its own ``__traceback__`` slot."""
        err = self._error
        assert err is not None
        try:
            clone = type(err).__new__(type(err))
            clone.args = err.args
            clone.__dict__.update(err.__dict__)
        except Exception:
            # Exotic exception type (custom __new__); fall back to the
            # shared object rather than mask the real failure.
            return err
        clone.__cause__ = err.__cause__
        clone.__suppress_context__ = err.__suppress_context__
        return clone.with_traceback(self._error_tb)

    def _resolve(
        self,
        started: float,
        result: AdmissionResult | None,
        error: BaseException | None,
    ) -> bool:
        """First resolution wins; returns whether this call was it.

        Idempotence lets ``close()`` fail a ticket whose worker is stuck
        without racing that worker's own (late) resolution.
        """
        with self._lock:
            if self._done.is_set():
                return False
            self.latency_s = time.perf_counter() - started
            self._result = result
            self._error = error
            # Captured once: waiters re-raise clones, so the worker's
            # traceback chain stays pristine no matter how many callers
            # (or threads) observe the failure.
            self._error_tb = (
                error.__traceback__ if error is not None else None
            )
            self._done.set()
            return True


_SHUTDOWN = object()


class DebloatServer:
    """Admission workers over one shared store (or store federation)."""

    def __init__(
        self,
        store: DebloatStore,
        workers: int = 2,
        verify: bool = False,
        batch_max: int = 1,
        sweep_interval_s: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise UsageError("DebloatServer needs at least one worker")
        if batch_max < 1:
            raise UsageError("batch_max must be >= 1")
        if sweep_interval_s is not None:
            if sweep_interval_s <= 0:
                raise UsageError("sweep_interval_s must be positive")
            if not hasattr(store, "sweep"):
                raise UsageError(
                    "sweep_interval_s needs a sweep()-capable target "
                    "(a StoreFederation)"
                )
        self.store = store
        self.verify = verify
        self.batch_max = batch_max
        self.retry = retry if retry is not None else RetryPolicy()
        self._batches_merged = 0
        self._queue: queue.Queue = queue.Queue()
        # Orders submit() against close(): a ticket must never land behind
        # the shutdown sentinels (it would hang its waiter forever), and
        # the served/failed counters are bumped from N worker threads.
        self._state_lock = threading.Lock()
        self._closed = False
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._retries = 0
        #: Every unresolved ticket, keyed by identity: close() fails
        #: whatever is left here so no waiter ever hangs.
        self._pending: dict[int, tuple[AdmissionTicket, float]] = {}
        self._sweeps_run = 0
        self._sweeps_evicted = 0
        self._sweeps_failed = 0
        self.last_sweep_error: str | None = None
        self._sweep_stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"debloat-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()
        self._sweeper: threading.Thread | None = None
        if sweep_interval_s is not None:
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                args=(sweep_interval_s,),
                name="debloat-serve-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    # -- submission -----------------------------------------------------------

    def submit(self, spec: WorkloadSpec) -> AdmissionTicket:
        """Enqueue one admission; returns immediately with a ticket."""
        with self._state_lock:
            if self._closed:
                raise ServerClosedError("server is closed")
            ticket = AdmissionTicket(spec)
            started = time.perf_counter()
            self._submitted += 1
            self._pending[id(ticket)] = (ticket, started)
            self._queue.put((ticket, started))
        return ticket

    def admit(
        self, spec: WorkloadSpec, timeout: float | None = None
    ) -> AdmissionResult:
        """Submit and block until the admission completes."""
        return self.submit(spec).result(timeout)

    def admit_all(
        self, specs: list[WorkloadSpec], timeout: float | None = None
    ) -> list[AdmissionResult]:
        """Submit a batch and wait for all, preserving submission order."""
        tickets = [self.submit(spec) for spec in specs]
        return [t.result(timeout) for t in tickets]

    # -- readers --------------------------------------------------------------

    def snapshot(self) -> StoreSnapshot:
        return self.store.snapshot()

    def stats(self) -> dict[str, int]:
        """One *consistent* snapshot of the server counters.

        All server-side fields are read under ``_state_lock`` - workers
        bump them concurrently, and an unlocked read could see e.g. a
        ``served`` that already counts a ticket still present in
        ``in_flight`` (a torn view where served + failed + in_flight
        exceeds the submissions).  Two queue-depth fields with distinct
        meanings: ``queued`` counts tickets no worker has dequeued yet,
        ``in_flight`` counts every unresolved ticket (queued + being
        admitted right now).
        """
        store_stats = self.store.stats()
        with self._state_lock:
            return {
                **store_stats,
                "workers": len(self._threads),
                "queued": self._queue.qsize(),
                "in_flight": len(self._pending),
                "submitted": self._submitted,
                "served": self._served,
                "failed": self._failed,
                "retries": self._retries,
                "batches_merged": self._batches_merged,
                "sweeps_run": self._sweeps_run,
                "sweeps_evicted": self._sweeps_evicted,
                "sweeps_failed": self._sweeps_failed,
            }

    def health(self) -> dict:
        """Liveness + fault counters for the server and its target.

        ``state`` is ``ok`` (all workers alive), ``degraded`` (some worker
        died), or ``closed``.  When the target exposes its own ``health()``
        (a :class:`~repro.api.federation.StoreFederation`) it is included
        under ``target``; a bare store contributes its rollback counters
        under ``store``.
        """
        with self._state_lock:
            closed = self._closed
            queued = self._queue.qsize()
            in_flight = len(self._pending)
            served, failed, retries = self._served, self._failed, self._retries
            sweeps_run = self._sweeps_run
            sweeps_failed = self._sweeps_failed
        alive = sum(t.is_alive() for t in self._threads)
        if closed:
            state = "closed"
        elif alive == len(self._threads):
            state = "ok"
        else:
            state = "degraded"
        out: dict = {
            "state": state,
            "workers": len(self._threads),
            "workers_alive": alive,
            "queued": queued,
            "in_flight": in_flight,
            "served": served,
            "failed": failed,
            "retries": retries,
            "sweeper": {
                "configured": self._sweeper is not None,
                "alive": (
                    self._sweeper.is_alive()
                    if self._sweeper is not None
                    else False
                ),
                "runs": sweeps_run,
                "failed": sweeps_failed,
                "last_error": self.last_sweep_error,
            },
        }
        target_health = getattr(self.store, "health", None)
        if callable(target_health):
            out["target"] = target_health()
        else:
            stats = self.store.stats()
            out["store"] = {
                "rollbacks": stats.get("rollbacks", 0),
                "last_error": getattr(self.store, "last_error", None),
            }
        return out

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Drain the queue, stop the workers, and reject new submissions.

        Never strands a waiter: after the workers are joined (or
        ``timeout`` expires while one is stuck), every still-unresolved
        ticket fails immediately with
        :class:`~repro.errors.ServerClosedError` - a pending ``result()``
        call returns right away instead of blocking out its own timeout.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            # Sentinels enqueue under the same lock as tickets, so every
            # submitted ticket precedes them and gets drained before the
            # workers exit.
            for _ in self._threads:
                self._queue.put(_SHUTDOWN)
        self._sweep_stop.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for t in self._threads:
            t.join(
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
        if self._sweeper is not None:
            self._sweeper.join(
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
        with self._state_lock:
            leftovers = [t for t, _ in self._pending.values()]
            self._pending.clear()
        for ticket in leftovers:
            won = ticket._resolve(
                time.perf_counter(),
                None,
                ServerClosedError(
                    f"server closed with admission of "
                    f"{ticket.spec.workload_id} still pending"
                ),
            )
            if won:
                with self._state_lock:
                    self._failed += 1

    def __enter__(self) -> "DebloatServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _sweep_loop(self, interval_s: float) -> None:
        """Periodic policy sweep against the federation target.

        Sweep failures (a racing explicit evict, a strict-verify error
        surfaced by a recompaction) must never kill the sweeper - the
        next tick retries against fresh state.
        """
        while not self._sweep_stop.wait(interval_s):
            try:
                faults.check("sweeper.tick")
                swept = self.store.sweep()
            except Exception as exc:  # noqa: BLE001 - sweeping is best-effort
                with self._state_lock:
                    self._sweeps_failed += 1
                self.last_sweep_error = f"{type(exc).__name__}: {exc}"
                continue
            with self._state_lock:
                self._sweeps_run += 1
                self._sweeps_evicted += len(swept)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    # Hand the sentinel on: another worker (or this one's
                    # next loop turn) still has to see it.
                    self._queue.put(_SHUTDOWN)
                    break
                batch.append(extra)
            if len(batch) == 1:
                self._admit_one(*batch[0])
            else:
                self._admit_batch(batch)

    def _admit_one(self, ticket: AdmissionTicket, started: float) -> None:
        """One admission under the retry policy.

        Transient failures (injected faults, OS errors - the store rolled
        back, so re-admission is safe) retry with backoff; exhausting the
        budget resolves the ticket with a typed
        :class:`~repro.errors.AdmissionError`.  Permanent failures (usage
        or verification errors) resolve immediately without retrying.
        Shard recovery state is relayed to federation targets that track
        it (``mark_recovering`` / ``record_failure`` / ``record_success``).
        """
        spec = ticket.spec
        attempts = 1

        def attempt():
            faults.check("worker.pre_merge")
            return self.store.admit(spec, verify=self.verify)

        def note_retry(n: int, exc: BaseException) -> None:
            nonlocal attempts
            attempts = n + 1
            with self._state_lock:
                self._retries += 1
            mark = getattr(self.store, "mark_recovering", None)
            if callable(mark):
                mark(spec, exc)

        try:
            result = self.retry.call(
                attempt, token=spec.workload_id, on_retry=note_retry
            )
        except DEFAULT_RETRYABLE as exc:
            record = getattr(self.store, "record_failure", None)
            if callable(record):
                record(spec, exc)
            self._finish(
                ticket,
                started,
                None,
                AdmissionError(spec.workload_id, attempts, exc),
            )
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            self._finish(ticket, started, None, exc)
        else:
            record = getattr(self.store, "record_success", None)
            if callable(record):
                record(spec)
            self._finish(ticket, started, result, None)

    def _finish(
        self,
        ticket: AdmissionTicket,
        started: float,
        result: AdmissionResult | None,
        error: BaseException | None,
    ) -> None:
        won = ticket._resolve(started, result, error)
        with self._state_lock:
            self._pending.pop(id(ticket), None)
            if won:
                if error is None:
                    self._served += 1
                else:
                    self._failed += 1

    def _admit_batch(
        self, batch: list[tuple[AdmissionTicket, float]]
    ) -> None:
        """Drained-queue admission: one ``admit_many`` for the whole batch.

        Any batch-level failure falls back to per-spec admission so one
        bad request never fails its queue neighbours: ``admit_many``
        validates every spec before mutating anything (a malformed batch
        raises :class:`UsageError` with the store untouched), and a
        failure *after* the batch committed (e.g. a strict-verify
        :class:`VerificationError` for one spec) is safe to retry because
        re-admission is idempotent - the per-spec pass re-verifies each
        workload and errors only the ticket that actually failed.
        """
        try:
            results = self.store.admit_many(
                [ticket.spec for ticket, _ in batch], verify=self.verify
            )
        except Exception:  # noqa: BLE001 - per-spec retry assigns blame
            for ticket, started in batch:
                self._admit_one(ticket, started)
            return
        with self._state_lock:
            self._batches_merged += 1
        record = getattr(self.store, "record_success", None)
        for (ticket, started), result in zip(batch, results):
            if callable(record):
                record(ticket.spec)
            self._finish(ticket, started, result, None)

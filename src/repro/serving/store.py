"""Thread-safe shared debloated-library store with delta admission.

The paper's §5 discussion argues that usage saturates: code unused by one
workload is rarely needed by others, so the *union* of workload usage stops
growing after a handful of admissions.  ``Debloater.debloat_many`` proves
that statically but recomputes every library per call;
:class:`DebloatStore` makes it a serving primitive:

* the store holds the current union usage (kernel names + function indices
  per soname) and the debloated libraries built against it;
* :meth:`admit` runs detection for the *new* workload only, then
  re-locates/re-compacts **only the libraries whose union actually grew**
  (:meth:`~repro.core.locate.KernelLocator.locate_delta` reuses the
  previous decisions and the per-library cached
  :class:`~repro.core.kindex.KernelUsageIndex`); libraries with zero
  new kernels/functions are served from the store untouched;
* :meth:`admit_many` drains a *batch* of queued workloads into one union
  merge and a single delta locate/compact pass per grown library -
  byte-identical end state to sequential admission with far fewer
  recompactions (the server's queue-draining path);
* every successful mutation publishes a new immutable
  :class:`StoreSnapshot` (generation-numbered, copy-on-write library map),
  so concurrent readers always observe a consistent library set while
  admissions mutate;
* every mutation is **transactional**: the union merge, delta
  locate/compact, and bookkeeping run inside :meth:`_txn`, which commits
  (invariant check + snapshot publish) atomically or rolls the store back
  to the pre-mutation epoch on any exception - a failure mid-``admit``,
  mid-batch in ``admit_many``, or mid-eviction leaves no partially-merged
  union behind (see :class:`~repro.errors.StoreInvariantError`);
* delta compaction fans out over threads
  (``DebloatOptions.locate_workers``) while the union merge itself stays
  serialized under the admission lock; per-library locks additionally
  order any two compactions of the same library, keeping the fan-out safe
  for callers that move it outside the admission lock (e.g. future
  admission batching) - today's serialized merges never contend them;
* :meth:`evict` rebuilds the union from the remaining admissions and
  re-compacts only the libraries whose union shrank; :meth:`reset` clears
  everything;
* with ``use_cache=True`` admission detection routes through the two-tier
  pipeline cache (:mod:`repro.serving.usage`), so a warm store survives
  process restarts with zero workload runs.

Incremental admission is byte-identical to a one-shot union:
locate/compact is a pure function of (library, union sets, architecture),
and retention is monotone in the union, so admitting N workloads one at a
time ends in exactly the library bytes ``debloat_many`` produces for the
same N - which is why ``debloat_many`` is now a thin loop over
:meth:`admit`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.core.compact import Compactor, DebloatedLibrary
from repro.core.cpu import FunctionLocator
from repro.core.debloat import DebloatOptions, MultiWorkloadReport
from repro.core.locate import KernelLocator, LocateResult
from repro.core.kindex import KernelUsageIndex, index_for
from repro.core.report import LibraryReduction
from repro.core.verify import VerificationResult, verify_debloat
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS
from repro.errors import StoreInvariantError, UsageError, VerificationError
from repro.frameworks.spec import Framework
from repro.serving.usage import WorkloadUsage, cached_usage, capture_usage
from repro.storage.blockstore import BlockStore
from repro.testing import faults
from repro.utils.units import pct_reduction
from repro.workloads.spec import WorkloadSpec

_EMPTY_INDICES = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class AdmissionResult:
    """What one :meth:`DebloatStore.admit` call did."""

    workload_id: str
    #: Store generation after this admission.
    generation: int
    #: Kernels this workload added to the union (the marginal-retention
    #: series the saturation experiment plots).
    new_kernels: int
    new_functions: int
    #: Libraries re-located/re-compacted because their union grew.
    recompacted: tuple[str, ...]
    #: Libraries served from the store untouched.
    untouched: tuple[str, ...]
    #: First-seen libraries (subset of ``recompacted``).
    added_libraries: tuple[str, ...]
    #: Union library sizes at this admission's epoch (captured under the
    #: admission lock, so they describe exactly this generation even when
    #: later admissions land before the caller reads the result).
    union_file_size: int
    union_file_size_after: int
    #: Virtual cost of the fused detection run for this workload.
    detection_run_s: float
    #: Virtual cost of the delta locate/compact work (0 when nothing grew).
    locate_compact_s: float
    #: The workload's usage was served from the pipeline cache (no run).
    detection_cached: bool
    #: This exact spec had been admitted before (idempotent re-admission).
    duplicate: bool
    verification: VerificationResult | None = None

    @property
    def admit_virtual_s(self) -> float:
        return self.detection_run_s + self.locate_compact_s


@dataclass(frozen=True)
class EvictionResult:
    """What one :meth:`DebloatStore.evict` call did."""

    workload_id: str
    generation: int
    removed_admissions: int
    #: Libraries re-compacted because their union shrank.
    recompacted: tuple[str, ...]
    #: Libraries dropped entirely (no remaining workload needs them).
    dropped_libraries: tuple[str, ...]


@dataclass(frozen=True)
class StoreSnapshot:
    """An immutable, internally consistent view of the store.

    Snapshots are copy-on-write: admissions build a new library map and
    publish a new snapshot atomically, so a reader holding generation N
    never observes generation N+1's libraries - the reader's set, counts,
    and reductions all describe the same epoch.
    """

    generation: int
    workload_ids: tuple[str, ...]
    libraries: Mapping[str, DebloatedLibrary]
    union_kernels: int
    union_functions: int
    #: Per-library reductions in catalog order (the report's row order).
    reductions: tuple[LibraryReduction, ...]

    @property
    def sonames(self) -> tuple[str, ...]:
        return tuple(r.soname for r in self.reductions)

    @property
    def total_file_size(self) -> int:
        return sum(r.file_size for r in self.reductions)

    @property
    def total_file_size_after(self) -> int:
        return sum(r.file_size_after for r in self.reductions)

    @property
    def file_reduction_pct(self) -> float:
        return pct_reduction(self.total_file_size, self.total_file_size_after)

    def library(self, soname: str) -> DebloatedLibrary:
        return self.libraries[soname]


class DebloatStore:
    """One debloated library set shared across admitted workloads."""

    def __init__(
        self,
        framework: Framework,
        options: DebloatOptions | None = None,
        use_cache: bool = False,
        cache=None,
        blockstore: BlockStore | None = None,
    ) -> None:
        self.framework = framework
        self.options = options or DebloatOptions()
        #: Explicit pipeline-cache override (the engine facade threads its
        #: own through); None = the process-wide PIPELINE_CACHE, resolved
        #: dynamically per use so reconfiguration/monkeypatching holds.
        self._cache_override = cache
        # Cached usage is keyed on (spec, scale, catalog-build fingerprint)
        # under the default cost model; a custom cost model changes run
        # metrics and a non-catalog build (e.g. a single-arch ablation
        # rebuild) would collide with the canonical build's entries - both
        # silently opt out of the cache rather than risk serving stale or
        # cross-build data.
        self._use_cache = (
            bool(use_cache)
            and self.options.costs is DEFAULT_COSTS
            and _is_catalog_build(framework)
        )
        # Generation key for the persisted kernel-index tier: cached
        # indexes are keyed on the framework-build fingerprint, so only
        # catalog builds (whose (name, scale, archs) a fingerprint can
        # describe) participate; the usage-cache guard implies that.
        self._index_key = (
            _catalog_build_key(framework) if self._use_cache else None
        )
        self._admission_lock = threading.RLock()
        # Guards only the per-library lock table (not the admission lock):
        # pool workers fetch their lock while the admitting thread holds
        # the admission lock across the fan-out, so the table needs its
        # own tiny guard to stay deadlock-free.
        self._locks_guard = threading.Lock()
        self._lib_locks: dict[str, threading.Lock] = {}
        self._generation = 0
        self._arch: int | None = None
        self._features: frozenset[str] = frozenset()
        self._union_kernels: dict[str, set[str]] = {}
        #: soname -> sorted-unique int64 used-function indices; kept as
        #: arrays so membership growth checks and union merges run at
        #: NumPy speed instead of Python set algebra.
        self._union_functions: dict[str, np.ndarray] = {}
        self._admitted: list[WorkloadSpec] = []
        self._usage: dict[WorkloadSpec, WorkloadUsage] = {}
        self._marginal_kernels: list[int] = []
        self._debloated: dict[str, DebloatedLibrary] = {}
        self._locates: dict[str, LocateResult] = {}
        self._kernel_locator = KernelLocator(self.options.costs)
        self._function_locator = FunctionLocator(self.options.costs)
        self._compactor = Compactor(self.options.costs)
        #: Content-addressed block layer backing every committed library's
        #: payload bytes (compacted + original).  A federation threads one
        #: shared store through all of its shards so cross-shard duplicates
        #: collapse to a single physical copy; a bare store gets a private
        #: one.  Mirrored at transaction commit (:meth:`_sync_blocks_locked`),
        #: so rollbacks never touch refcounts and WAL replay/snapshot import
        #: reconstruct them exactly by re-committing.
        self._blocks = blockstore if blockstore is not None else BlockStore()
        self._block_owner = self._blocks.new_owner(framework.name)
        #: soname -> committed DebloatedLibrary last mirrored into the block
        #: layer; rebind-on-write epochs make identity comparison an exact
        #: change detector.
        self._block_synced: dict[str, DebloatedLibrary] = {}
        self._snapshot = StoreSnapshot(
            generation=0,
            workload_ids=(),
            libraries=MappingProxyType({}),
            union_kernels=0,
            union_functions=0,
            reductions=(),
        )
        self._stat_admissions = 0
        self._stat_duplicates = 0
        self._stat_recompactions = 0
        self._stat_untouched_served = 0
        self._stat_usage_cache_hits = 0
        self._stat_rollbacks = 0
        self._stat_rollback_recompactions = 0
        #: ``"ExcType: message"`` of the last rolled-back mutation, or None.
        self.last_error: str | None = None
        #: Write-ahead log journaling committed mutations (durability off
        #: until :meth:`attach_wal`); append failures degrade durability,
        #: never the committed admission.
        self._wal = None
        self._stat_wal_failures = 0
        #: ``"ExcType: message"`` of the last failed WAL append, or None.
        self.last_wal_error: str | None = None

    # -- transactions ----------------------------------------------------------

    #: Counter attributes restored on rollback alongside the union state
    #: (``_stat_rollbacks`` is deliberately absent: a rolled-back mutation
    #: must still be *counted*).
    _TXN_COUNTERS = (
        "_stat_admissions",
        "_stat_duplicates",
        "_stat_recompactions",
        "_stat_untouched_served",
        "_stat_usage_cache_hits",
    )

    @contextmanager
    def _txn(self):
        """All-or-nothing mutation scope (admission lock must be held).

        The body stages union growth, delta locates, and recompactions
        against the live fields; on success the commit validates the
        epoch's invariants and publishes the new :class:`StoreSnapshot`.
        On *any* exception - including one raised mid-batch or by the
        invariant check itself - every mutable field (union sets, library
        map, admission ledger, counters, pinned architecture) is restored
        to the pre-transaction epoch before the exception propagates, and
        nothing is published: lock-free readers only ever observe the
        last committed snapshot.
        """
        state = self._capture_epoch_locked()
        try:
            yield
            self._validate_invariants_locked()
        except BaseException as exc:
            # Recompactions performed inside the aborted transaction are
            # discarded work; count them before the restore erases them.
            self._stat_rollback_recompactions += (
                self._stat_recompactions
                - state["counters"]["_stat_recompactions"]
            )
            self._restore_epoch_locked(state)
            self._stat_rollbacks += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            raise
        else:
            self._publish_snapshot()
            self._sync_blocks_locked()

    def _capture_epoch_locked(self) -> dict:
        return {
            "generation": self._generation,
            "arch": self._arch,
            "features": self._features,
            # Kernel sets are mutated in place by the merge; everything
            # else is rebind-on-write, so shallow container copies suffice.
            "union_kernels": {
                k: set(v) for k, v in self._union_kernels.items()
            },
            "union_functions": dict(self._union_functions),
            "admitted": list(self._admitted),
            "usage": dict(self._usage),
            "marginal_kernels": list(self._marginal_kernels),
            "debloated": dict(self._debloated),
            "locates": dict(self._locates),
            "counters": {
                name: getattr(self, name) for name in self._TXN_COUNTERS
            },
        }

    def _restore_epoch_locked(self, state: dict) -> None:
        self._generation = state["generation"]
        self._arch = state["arch"]
        self._features = state["features"]
        self._union_kernels = state["union_kernels"]
        self._union_functions = state["union_functions"]
        self._admitted = state["admitted"]
        self._usage = state["usage"]
        self._marginal_kernels = state["marginal_kernels"]
        self._debloated = state["debloated"]
        self._locates = state["locates"]
        for name, value in state["counters"].items():
            setattr(self, name, value)

    def _sync_blocks_locked(self) -> None:
        """Mirror the committed epoch into the content-addressed block layer.

        Diffs the committed library map against the last synced epoch by
        object identity, ingesting changed payloads *first* (unchanged
        pieces dedupe against live blocks, bumping refcounts) and releasing
        replaced manifests after - the copy-on-write ordering that keeps
        blocks shared between epochs from transiently hitting refcount
        zero.  Runs only on successful commits: a rolled-back transaction
        never reaches this hook, so rollback restores refcounts by simply
        never having changed them, and WAL replay / snapshot import
        reconstruct them exactly by re-committing through the ordinary
        mutators.
        """
        current = self._debloated
        previous = self._block_synced
        for soname, d in current.items():
            prev = previous.get(soname)
            if prev is d:
                continue
            # ingest() replaces copy-on-write: a delta recompaction
            # allocates only its changed blocks.
            self._blocks.ingest(
                self._block_owner, f"comp:{soname}", d.lib.data
            )
            if prev is None or prev.original is not d.original:
                self._blocks.ingest(
                    self._block_owner, f"orig:{soname}", d.original.data
                )
        for soname in previous:
            if soname not in current:
                self._blocks.release(self._block_owner, f"comp:{soname}")
                self._blocks.release(self._block_owner, f"orig:{soname}")
        self._block_synced = dict(current)

    def validate_invariants(self) -> None:
        """Check epoch consistency; raise :class:`StoreInvariantError`.

        Runs automatically at every transaction commit; public so tests
        and health probes can assert the live store is consistent.  The
        public form additionally cross-checks the block-layer mirror
        (committed libraries <-> registered manifests) and the block
        store's own refcount invariants; the commit-time form cannot,
        because it runs *before* the epoch is mirrored.
        """
        with self._admission_lock:
            self._validate_invariants_locked()
            self._validate_blocks_locked()

    def _validate_blocks_locked(self) -> None:
        problems: list[str] = []
        if set(self._block_synced) != set(self._debloated):
            problems.append(
                f"block mirror tracks {sorted(self._block_synced)}, "
                f"library map holds {sorted(self._debloated)}"
            )
        else:
            stale = [
                soname
                for soname, d in self._debloated.items()
                if self._block_synced[soname] is not d
            ]
            if stale:
                problems.append(
                    f"block mirror is stale for {sorted(stale)}"
                )
        expected = {
            f"{kind}:{soname}"
            for soname in self._block_synced
            for kind in ("comp", "orig")
        }
        registered = set(self._block_owner.manifests)
        if registered != expected:
            problems.append(
                f"registered manifests {sorted(registered ^ expected)} "
                f"disagree with the mirror"
            )
        if problems:
            raise StoreInvariantError("; ".join(problems))
        self._blocks.validate_invariants()

    # -- content-addressed block layer -----------------------------------------

    @property
    def blockstore(self) -> BlockStore:
        """The block layer backing this store (possibly federation-shared)."""
        return self._blocks

    def block_manifest(self, soname: str):
        """Committed compacted payload's block manifest, or None."""
        with self._admission_lock:
            return self._blocks.manifest_for(
                self._block_owner, f"comp:{soname}"
            )

    def block_view(self, soname: str):
        """``BlockRef``-backed read view over shared physical extents.

        Reads resolve through the block store's single physical copy of
        each chunk; ``None`` when the store does not hold ``soname``.
        """
        manifest = self.block_manifest(soname)
        return None if manifest is None else self._blocks.view(manifest)

    def _validate_invariants_locked(self) -> None:
        problems: list[str] = []
        if len(self._marginal_kernels) != len(self._admitted):
            problems.append(
                f"{len(self._admitted)} admissions but "
                f"{len(self._marginal_kernels)} marginal entries"
            )
        admitted = set(self._admitted)
        if admitted != set(self._usage):
            problems.append("admission ledger and usage map disagree")
        if self._admitted:
            if self._arch is None:
                problems.append("admissions present but no pinned arch")
            else:
                expected = {
                    lib.soname
                    for lib in self.framework.libraries_for(self._features)
                }
                if set(self._debloated) != expected:
                    problems.append(
                        f"library map holds {sorted(self._debloated)}, "
                        f"feature set implies {sorted(expected)}"
                    )
        elif self._debloated:
            problems.append("empty store still holds libraries")
        if not set(self._locates) <= set(self._debloated):
            problems.append("locate results for libraries not in the store")
        if problems:
            raise StoreInvariantError("; ".join(problems))

    # -- write-ahead logging ---------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.serving.wal.WriteAheadLog`, or None."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Journal every committed mutation to ``wal`` from now on.

        Taken under the admission lock so the first journaled record
        cannot race an in-flight commit.  Recovery attaches the WAL only
        *after* replaying it, so replayed mutations are never re-appended.
        """
        with self._admission_lock:
            self._wal = wal

    def _wal_append_locked(self, op: str, args: dict) -> None:
        """Append one committed mutation record (admission lock held).

        Runs *after* the transaction published its snapshot, so the
        journal only ever describes committed state and record order
        equals commit order.  An append failure (disk full, injected
        ``wal.append`` fault) is counted and remembered but never undoes
        the commit: durability degrades, serving does not.
        """
        if self._wal is None:
            return
        record = dict(args)
        record["op"] = op
        record["generation"] = self._generation
        record["counters"] = {
            name: getattr(self, name) for name in self._TXN_COUNTERS
        }
        try:
            self._wal.append(record)
        except Exception as exc:
            self._stat_wal_failures += 1
            self.last_wal_error = f"{type(exc).__name__}: {exc}"

    def restore_counters(self, counters: dict) -> None:
        """Install journaled transactional counters (WAL replay only).

        Counters like ``usage_cache_hits`` are replay-variant (a replayed
        admission hits the cache where the original computed), so recovery
        installs the values recorded at the last committed mutation to
        make the recovered image byte-identical to the pre-crash one.
        """
        with self._admission_lock:
            for name in self._TXN_COUNTERS:
                if name in counters:
                    setattr(self, name, int(counters[name]))

    def export_durable(self) -> tuple[dict, int]:
        """``(export_state(), WAL watermark)`` as one atomic observation.

        Both are captured under the admission lock, so the returned
        sequence number is exactly the last record contributing to the
        image - the checkpoint writer stores it as the shard's
        ``wal_seq`` and recovery replays only records past it.
        """
        with self._admission_lock:
            seq = self._wal.last_seq if self._wal is not None else 0
            return self.export_state(), seq

    # -- admission ------------------------------------------------------------

    def admit(
        self, spec: WorkloadSpec, verify: bool = False
    ) -> AdmissionResult:
        """Admit one workload into the union, delta-compacting as needed.

        Detection (the expensive part) runs *outside* the admission lock,
        so concurrent admitters overlap their instrumented runs; only the
        union merge and the delta locate/compact serialize.  ``verify``
        re-runs the workload against the post-admission library set (union
        growth is monotone, so previously admitted workloads stay
        verified).  Raises :class:`UsageError` for a workload that targets
        another framework or device architecture.
        """
        self._validate(spec)
        with self._admission_lock:
            prior = self._usage.get(spec)
        if prior is not None:
            usage, detection_cached, duplicate = prior, True, True
        else:
            usage, detection_cached = self._capture(spec)
            duplicate = False

        with self._admission_lock:
            if self._arch is not None:
                # Authoritative re-check under the lock: two racing first
                # admissions may both have seen no pinned architecture.
                # Validation precedes the transaction - a malformed
                # request is a rejection, not a rollback.
                _check_spec(self.framework.name, self._arch, spec)
            duplicate = duplicate or spec in self._usage

            with self._txn():
                if detection_cached and not duplicate:
                    self._stat_usage_cache_hits += 1
                if self._arch is None:
                    self._arch = spec.devices()[0].sm_arch

                added_kernels, grown_fn, marginal, marginal_fn = (
                    self._merge_usage_locked(spec, usage)
                )

                libs = self.framework.libraries_for(self._features)
                to_process = [
                    lib
                    for lib in libs
                    if lib.soname not in self._debloated
                    or lib.soname in added_kernels
                    or lib.soname in grown_fn
                ]
                added_libs = tuple(
                    lib.soname
                    for lib in libs
                    if lib.soname not in self._debloated
                )
                processed = {p.soname for p in to_process}
                untouched = tuple(
                    lib.soname
                    for lib in libs
                    if lib.soname in self._debloated
                    and lib.soname not in processed
                )

                results = self._process(to_process, added_kernels)
                new_debloated = dict(self._debloated)
                locate_compact_s = 0.0
                for soname, gpu_res, d, elapsed in results:
                    new_debloated[soname] = d
                    self._locates[soname] = gpu_res
                    locate_compact_s += elapsed
                self._debloated = new_debloated

                self._admitted.append(spec)
                self._usage.setdefault(spec, usage)
                self._marginal_kernels.append(marginal)
                self._generation += 1
                self._stat_admissions += 1
                self._stat_duplicates += int(duplicate)
                self._stat_recompactions += len(to_process)
                self._stat_untouched_served += len(untouched)

            from repro.core import serialize

            self._wal_append_locked(
                "admit",
                {
                    "spec": serialize.spec_to_payload(spec),
                    "verify": bool(verify),
                },
            )
            snapshot_libs = self._debloated
            generation = self._generation
            union_file_size = self._snapshot.total_file_size
            union_file_size_after = self._snapshot.total_file_size_after

        verification = None
        if verify:
            verification = verify_debloat(
                spec,
                self.framework,
                snapshot_libs,
                usage.metrics,
                self.options.costs,
            )
            if self.options.strict_verify and not verification.ok:
                raise VerificationError(
                    f"{spec.workload_id}: {verification.error}"
                )

        return AdmissionResult(
            workload_id=spec.workload_id,
            generation=generation,
            new_kernels=marginal,
            new_functions=marginal_fn,
            recompacted=tuple(lib.soname for lib in to_process),
            untouched=untouched,
            added_libraries=added_libs,
            union_file_size=union_file_size,
            union_file_size_after=union_file_size_after,
            detection_run_s=usage.metrics.execution_time_s,
            locate_compact_s=locate_compact_s,
            detection_cached=detection_cached,
            duplicate=duplicate,
            verification=verification,
        )

    def _merge_usage_locked(
        self, spec: WorkloadSpec, usage: WorkloadUsage
    ) -> tuple[dict[str, frozenset[str]], set[str], int, int]:
        """Merge one workload's usage into the union (admission lock held).

        Returns ``(added_kernels, grown_fn, marginal_kernels,
        marginal_functions)``.  Function unions are sorted-unique int64
        arrays: growth detection is one ``np.setdiff1d`` probe and the
        merge one ``np.union1d`` - no Python set algebra on paper-scale
        index sets.
        """
        faults.check("store.merge")
        before = sum(len(v) for v in self._union_kernels.values())
        before_fn = sum(int(v.size) for v in self._union_functions.values())
        added_kernels: dict[str, frozenset[str]] = {}
        for soname, names in usage.kernels.items():
            new = names - self._union_kernels.get(soname, frozenset())
            if new:
                added_kernels[soname] = frozenset(new)
        grown_fn: set[str] = set()
        for soname, idx in usage.functions.items():
            have = self._union_functions.get(soname)
            if have is None:
                if idx.size:
                    grown_fn.add(soname)
            elif np.setdiff1d(idx, have).size:
                grown_fn.add(soname)

        for soname, new in added_kernels.items():
            self._union_kernels.setdefault(soname, set()).update(new)
        for soname, idx in usage.functions.items():
            have = self._union_functions.get(soname)
            self._union_functions[soname] = (
                np.union1d(have, idx)
                if have is not None
                else np.unique(np.asarray(idx, dtype=np.int64))
            )
        marginal = sum(len(v) for v in self._union_kernels.values()) - before
        marginal_fn = (
            sum(int(v.size) for v in self._union_functions.values())
            - before_fn
        )
        self._features = self._features | spec.features
        return added_kernels, grown_fn, marginal, marginal_fn

    def admit_many(
        self, specs: list[WorkloadSpec], verify: bool = False
    ) -> list[AdmissionResult]:
        """Admit a batch of queued workloads in ONE delta pass per library.

        Sequential :meth:`admit` calls re-locate/re-compact a library once
        per admission that grows it; a drained queue of N workloads can
        touch the same hot library N times.  ``admit_many`` merges every
        workload's usage into the union first - computing the same
        per-spec marginals a sequential admission would - and then runs a
        *single* delta locate/compact over the union of grown libraries.
        Retention is monotone in the union, so the end state is
        byte-identical to admitting the specs one at a time; only the
        number of recompactions shrinks.

        Bookkeeping mirrors sequential admission: the generation advances
        once per spec, each result's ``recompacted`` lists the libraries
        *that spec* grew, and the one batched pass's per-library cost is
        attributed to the first spec that grew each library.  All specs
        are validated against the store (and each other) before anything
        is mutated, so a malformed batch raises :class:`UsageError` with
        the store untouched.
        """
        if not specs:
            raise UsageError("admit_many needs at least one workload")
        with self._admission_lock:
            pinned = self._arch
        arch = (
            pinned if pinned is not None else specs[0].devices()[0].sm_arch
        )
        for spec in specs:
            _check_spec(self.framework.name, arch, spec)

        captures: list[tuple[WorkloadUsage, bool, bool]] = []
        batch_seen: dict[WorkloadSpec, WorkloadUsage] = {}
        for spec in specs:
            with self._admission_lock:
                prior = self._usage.get(spec)
            if prior is None:
                # A spec queued twice in one batch captures once, exactly
                # like sequential admission reuses the first admission's
                # recorded usage.
                prior = batch_seen.get(spec)
            if prior is not None:
                captures.append((prior, True, True))
            else:
                usage, cached = self._capture(spec)
                batch_seen[spec] = usage
                captures.append((usage, cached, False))

        results: list[AdmissionResult] = []
        with self._admission_lock:
            if self._arch is not None:
                # Re-validate under the lock (a racing admission may have
                # pinned a conflicting architecture) before any mutation.
                for spec in specs:
                    _check_spec(self.framework.name, self._arch, spec)
            pending, cost_of = self._admit_many_locked(specs, captures)
            from repro.core import serialize

            self._wal_append_locked(
                "admit_many",
                {
                    "specs": [
                        serialize.spec_to_payload(s) for s in specs
                    ],
                    "verify": bool(verify),
                },
            )
            generation = self._generation
            union_file_size = self._snapshot.total_file_size
            union_file_size_after = self._snapshot.total_file_size_after
            snapshot_libs = self._debloated

        for pos, item in enumerate(pending):
            verification = None
            if verify:
                verification = verify_debloat(
                    item["spec"],
                    self.framework,
                    snapshot_libs,
                    item["usage"].metrics,
                    self.options.costs,
                )
                if self.options.strict_verify and not verification.ok:
                    raise VerificationError(
                        f"{item['spec'].workload_id}: {verification.error}"
                    )
            results.append(
                AdmissionResult(
                    workload_id=item["spec"].workload_id,
                    generation=generation - len(specs) + pos + 1,
                    new_kernels=item["marginal"],
                    new_functions=item["marginal_fn"],
                    recompacted=item["recompacted"],
                    untouched=item["untouched"],
                    added_libraries=item["added_libraries"],
                    union_file_size=union_file_size,
                    union_file_size_after=union_file_size_after,
                    detection_run_s=item["usage"].metrics.execution_time_s,
                    locate_compact_s=cost_of[pos],
                    detection_cached=item["cached"],
                    duplicate=item["duplicate"],
                    verification=verification,
                )
            )
        return results

    def _admit_many_locked(
        self,
        specs: list[WorkloadSpec],
        captures: list[tuple[WorkloadUsage, bool, bool]],
    ) -> tuple[list[dict], list[float]]:
        """The transactional body of :meth:`admit_many` (lock held).

        Any exception - a merge fault on the third spec, a compaction
        failure in the single batched pass - rolls the *whole batch* back:
        the store ends at the pre-batch epoch, exactly as if ``admit_many``
        was never called.  Returns the per-spec bookkeeping ``pending``
        dicts and the per-spec attributed locate/compact costs.
        """
        with self._txn():
            if self._arch is None:
                self._arch = specs[0].devices()[0].sm_arch
            for spec in specs:
                _check_spec(self.framework.name, self._arch, spec)

            batch_added: dict[str, frozenset[str]] = {}
            first_grower: dict[str, int] = {}
            pending: list[dict] = []
            for pos, (spec, (usage, cached, known)) in enumerate(
                zip(specs, captures)
            ):
                duplicate = known or spec in self._usage
                if cached and not duplicate:
                    self._stat_usage_cache_hits += 1
                added_kernels, grown_fn, marginal, marginal_fn = (
                    self._merge_usage_locked(spec, usage)
                )
                for soname, new in added_kernels.items():
                    batch_added[soname] = (
                        batch_added.get(soname, frozenset()) | new
                    )
                libs = self.framework.libraries_for(self._features)
                grown = {
                    lib.soname
                    for lib in libs
                    if lib.soname not in self._debloated
                    and lib.soname not in first_grower
                    or lib.soname in added_kernels
                    or lib.soname in grown_fn
                }
                added_libs = tuple(
                    lib.soname
                    for lib in libs
                    if lib.soname not in self._debloated
                    and lib.soname not in first_grower
                )
                for soname in grown | set(added_libs):
                    first_grower.setdefault(soname, pos)
                untouched = tuple(
                    lib.soname
                    for lib in libs
                    if lib.soname not in grown
                    and (
                        lib.soname in self._debloated
                        or lib.soname in first_grower
                    )
                )
                pending.append(
                    {
                        "spec": spec,
                        "usage": usage,
                        "cached": cached,
                        "duplicate": duplicate,
                        "marginal": marginal,
                        "marginal_fn": marginal_fn,
                        "recompacted": tuple(sorted(grown)),
                        "untouched": untouched,
                        "added_libraries": added_libs,
                    }
                )
                self._admitted.append(spec)
                self._usage.setdefault(spec, usage)
                self._marginal_kernels.append(marginal)
                self._generation += 1
                self._stat_admissions += 1
                self._stat_duplicates += int(duplicate)
                self._stat_untouched_served += len(untouched)

            libs = self.framework.libraries_for(self._features)
            to_process = [
                lib for lib in libs if lib.soname in first_grower
            ]
            processed = self._process(to_process, batch_added)
            per_lib_cost: dict[str, float] = {}
            new_debloated = dict(self._debloated)
            for soname, gpu_res, d, elapsed in processed:
                new_debloated[soname] = d
                self._locates[soname] = gpu_res
                per_lib_cost[soname] = elapsed
            self._debloated = new_debloated
            self._stat_recompactions += len(to_process)

            cost_of: list[float] = [0.0] * len(specs)
            for soname, pos in first_grower.items():
                cost_of[pos] += per_lib_cost.get(soname, 0.0)
        return pending, cost_of

    # -- delta locate/compact -------------------------------------------------

    def _process(
        self,
        libs: list,
        added_kernels: dict[str, frozenset[str]],
    ) -> list[tuple[str, LocateResult | None, DebloatedLibrary, float]]:
        """Locate + compact the grown libraries, optionally in parallel.

        Each library is charged to a private clock, so the fan-out is
        deterministic and the per-library results are identical whether
        the loop runs serial or threaded.  The per-library lock is
        uncontended under today's admission-lock-serialized merges; it
        exists so two compactions of one library stay ordered if a caller
        ever runs ``_process`` outside the admission lock.

        A pass that dies partway discards every compaction it already
        finished (the enclosing transaction rolls back); those are counted
        in ``rollback_recompactions`` - the cost a retry re-pays, and the
        number the rollback-vs-rebuild benchmark compares against a full
        union rebuild.
        """
        completed: list[str] = []

        def process_one(lib) -> tuple:
            faults.check("store.process")
            with self._lib_lock(lib.soname):
                clock = VirtualClock()
                index = self._lib_index(lib)
                prev = self._locates.get(lib.soname)
                if prev is not None and prev.element_count:
                    gpu_res = self._kernel_locator.locate_delta(
                        lib,
                        prev,
                        added_kernels.get(lib.soname, frozenset()),
                        clock=clock,
                        index=index,
                    )
                else:
                    gpu_res = self._kernel_locator.locate(
                        lib,
                        frozenset(self._union_kernels.get(lib.soname, ())),
                        self._arch,
                        clock=clock,
                        index=index,
                    )
                used = self._union_functions.get(lib.soname)
                used_arr = used if used is not None else _EMPTY_INDICES
                cpu_res = self._function_locator.locate(
                    lib, used_arr, clock=clock
                )
                d = self._compactor.compact(lib, cpu_res, gpu_res, clock=clock)
                completed.append(lib.soname)
                return lib.soname, gpu_res, d, clock.now

        workers = self.options.locate_workers
        try:
            if workers and workers > 1 and len(libs) > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(process_one, libs))
            return [process_one(lib) for lib in libs]
        except BaseException:
            self._stat_rollback_recompactions += len(completed)
            raise

    def _lib_lock(self, soname: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._lib_locks.get(soname)
            if lock is None:
                lock = self._lib_locks[soname] = threading.Lock()
            return lock

    def _lib_index(self, lib) -> KernelUsageIndex | None:
        """The library's cached :class:`KernelUsageIndex`.

        The in-process cache (which replaced the store's raw cubin cache)
        lives on the :class:`SharedLibrary` instance itself via
        :func:`index_for`: one fatbin walk per library for the library's
        lifetime, shared by every admission's locate/locate_delta,
        eviction recompactions, and any other pipeline touching the same
        framework build.  Cache-backed catalog stores additionally route
        through the pipeline cache's persisted index tier
        (:meth:`~repro.experiments.common.PipelineCache.library_index`),
        so a warm engine skips even the one-time fatbin walk.
        """
        if lib.fatbin is None:
            return None
        if self._index_key is not None:
            name, scale, archs = self._index_key
            return self._pipeline_cache().library_index(
                lib, name, scale, archs
            )[0]
        return index_for(lib)

    def _pipeline_cache(self):
        if self._cache_override is not None:
            return self._cache_override
        from repro.experiments.common import PIPELINE_CACHE

        return PIPELINE_CACHE

    def _capture(self, spec: WorkloadSpec) -> tuple[WorkloadUsage, bool]:
        if self._use_cache:
            return cached_usage(
                spec, self.framework, cache=self._pipeline_cache()
            )
        return capture_usage(spec, self.framework, self.options.costs), False

    def _validate(self, spec: WorkloadSpec) -> None:
        _check_spec(self.framework.name, self._arch, spec)

    # -- readers --------------------------------------------------------------

    def snapshot(self) -> StoreSnapshot:
        """The current consistent view (lock-free atomic reference read)."""
        return self._snapshot

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    def debloated_libraries(self) -> dict[str, DebloatedLibrary]:
        """The current library map (a copy; entries are immutable)."""
        return dict(self._snapshot.libraries)

    def admitted_specs(self) -> tuple[WorkloadSpec, ...]:
        """The admission ledger in admission order (duplicates included).

        The remote-shard supervisor diffs this against its parent-side
        replay ledger after a crash restart, to re-admit exactly the
        committed-but-unexported tail.
        """
        with self._admission_lock:
            return tuple(self._admitted)

    def _publish_snapshot(self) -> None:
        reductions: tuple[LibraryReduction, ...] = ()
        if self._admitted:
            reductions = tuple(
                LibraryReduction.from_debloated(
                    lib, self._debloated[lib.soname]
                )
                for lib in self.framework.libraries_for(self._features)
            )
        self._snapshot = StoreSnapshot(
            generation=self._generation,
            workload_ids=tuple(s.workload_id for s in self._admitted),
            libraries=MappingProxyType(self._debloated),
            union_kernels=sum(
                len(v) for v in self._union_kernels.values()
            ),
            union_functions=sum(
                int(v.size) for v in self._union_functions.values()
            ),
            reductions=reductions,
        )

    # -- reporting ------------------------------------------------------------

    def report(
        self, verify: bool | None = None, strict: bool | None = None
    ) -> MultiWorkloadReport:
        """The ``debloat_many``-shaped report for everything admitted.

        Verification re-runs every admitted workload against the *final*
        library set (the seed ``debloat_many`` semantics, so the refactored
        thin loop stays byte-identical to the one-shot union).
        """
        with self._admission_lock:
            if not self._admitted:
                raise UsageError("store has no admitted workloads")
            specs = list(self._admitted)
            debloated = self._debloated
            usages = dict(self._usage)
            reductions = list(self._snapshot.reductions)
            marginal = list(self._marginal_kernels)
        if verify is None:
            verify = self.options.verify
        if strict is None:
            strict = self.options.strict_verify
        verifications: list[VerificationResult] = []
        if verify:
            for spec in specs:
                result = verify_debloat(
                    spec,
                    self.framework,
                    debloated,
                    usages[spec].metrics,
                    self.options.costs,
                )
                verifications.append(result)
                if strict and not result.ok:
                    raise VerificationError(
                        f"{spec.workload_id}: {result.error}"
                    )
        return MultiWorkloadReport(
            workload_ids=[spec.workload_id for spec in specs],
            libraries=reductions,
            verifications=verifications,
            marginal_new_kernels=marginal,
        )

    # -- snapshot export / import ---------------------------------------------

    def export_state(self) -> dict:
        """One consistent image of the committed epoch (a payload tree).

        Captured under the admission lock, so the image describes exactly
        one generation: usage unions, the admission ledger with per-spec
        recorded usage, per-library locate decisions, the debloated
        libraries' extents + compacted bytes, the cached kernel-usage
        indexes, and the transactional counters.  The tree is
        ``payload_dumps``-ready (kind
        :data:`~repro.core.serialize.STORE_KIND`); equal epochs export
        byte-identical containers.
        """
        from repro.core import serialize
        from repro.core.kindex import cached_index, index_to_payload
        from repro.frameworks.catalog import (
            build_key_for,
            framework_build_fingerprint,
        )
        from repro.serving.usage import usage_to_payload

        with self._admission_lock:
            build_key = build_key_for(self.framework)
            kindexes = {}
            for soname in sorted(self._debloated):
                index = cached_index(self.framework.libraries[soname])
                if index is not None:
                    kindexes[soname] = index_to_payload(index)
            return {
                "schema": serialize.SCHEMA_VERSION,
                "kind": serialize.STORE_KIND,
                "framework": self.framework.name,
                "build": (
                    None
                    if build_key is None
                    else {
                        "name": build_key[0],
                        "scale": build_key[1],
                        "archs": list(build_key[2]),
                    }
                ),
                "fingerprint": (
                    framework_build_fingerprint(*build_key)
                    if build_key is not None
                    else None
                ),
                "generation": self._generation,
                "arch": self._arch,
                "features": sorted(self._features),
                "union_kernels": {
                    soname: sorted(names)
                    for soname, names in sorted(self._union_kernels.items())
                },
                "union_functions": {
                    soname: np.asarray(idx, dtype=np.int64)
                    for soname, idx in sorted(self._union_functions.items())
                },
                "admissions": [
                    serialize.spec_to_payload(s) for s in self._admitted
                ],
                "usage": [
                    {
                        "spec": serialize.spec_to_payload(spec),
                        "usage": usage_to_payload(usage),
                    }
                    for spec, usage in self._usage.items()
                ],
                "marginal_kernels": [
                    int(n) for n in self._marginal_kernels
                ],
                "locates": {
                    soname: serialize.locate_to_payload(res)
                    for soname, res in sorted(self._locates.items())
                },
                "debloated": {
                    soname: serialize.debloated_to_payload(d)
                    for soname, d in sorted(self._debloated.items())
                },
                "kindexes": kindexes,
                "counters": {
                    name: getattr(self, name)
                    for name in self._TXN_COUNTERS
                },
            }

    def import_state(self, payload: dict) -> None:
        """Replace this store's state with an exported image, wholesale.

        The image must describe the same framework build (name always;
        fingerprint too when both sides have one) - the debloated bytes
        are reattached to *this* instance's original libraries, which is
        only sound against an identical build.  Decoding happens entirely
        before the transactional install, so a malformed image raises
        :class:`~repro.errors.SnapshotError` (schema skew:
        :class:`~repro.errors.SnapshotSchemaError`) with the store
        untouched.  Importing runs **zero** workloads: usage, decisions,
        and library bytes all come from the image, and the shipped
        kernel-usage indexes are re-attached so even the one-time fatbin
        walk is skipped.
        """
        from repro.core import serialize
        from repro.core.kindex import (
            cached_index,
            index_from_payload,
            index_matches_library,
            remember_index,
        )
        from repro.errors import SnapshotError
        from repro.frameworks.catalog import (
            build_key_for,
            framework_build_fingerprint,
        )
        from repro.serving.usage import usage_from_payload

        serialize._check_store_payload(payload)
        if payload.get("framework") != self.framework.name:
            raise SnapshotError(
                f"store image is for {payload.get('framework')!r}, this "
                f"store serves {self.framework.name!r}"
            )
        build_key = build_key_for(self.framework)
        ours = (
            framework_build_fingerprint(*build_key)
            if build_key is not None
            else None
        )
        theirs = payload.get("fingerprint")
        if ours is not None and theirs is not None and ours != theirs:
            raise SnapshotError(
                f"store image fingerprint {theirs} != this build's {ours}"
            )
        try:
            arch = payload["arch"]
            features = frozenset(payload["features"])
            union_kernels = {
                soname: set(names)
                for soname, names in payload["union_kernels"].items()
            }
            union_functions = {
                soname: np.asarray(idx, dtype=np.int64)
                for soname, idx in payload["union_functions"].items()
            }
            admitted = [
                serialize.spec_from_payload(p)
                for p in payload["admissions"]
            ]
            usage = {
                serialize.spec_from_payload(entry["spec"]):
                    usage_from_payload(entry["usage"])
                for entry in payload["usage"]
            }
            marginal = [int(n) for n in payload["marginal_kernels"]]
            locates = {
                soname: serialize.locate_from_payload(p)
                for soname, p in payload["locates"].items()
            }
            debloated: dict[str, DebloatedLibrary] = {}
            for soname, p in payload["debloated"].items():
                original = self.framework.libraries.get(soname)
                if original is None:
                    raise SnapshotError(
                        f"store image holds {soname!r}, which this build "
                        f"does not provide"
                    )
                debloated[soname] = serialize.debloated_from_payload(
                    p, original
                )
            indexes = {
                soname: index_from_payload(p)
                for soname, p in payload.get("kindexes", {}).items()
            }
            generation = int(payload["generation"])
            counters = {
                name: int(value)
                for name, value in payload.get("counters", {}).items()
                if name in self._TXN_COUNTERS
            }
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"malformed store image: {exc}"
            ) from exc

        for soname, index in indexes.items():
            lib = self.framework.libraries.get(soname)
            if (
                lib is not None
                and cached_index(lib) is None
                and index_matches_library(index, lib)
            ):
                remember_index(lib, index)

        with self._admission_lock:
            with self._txn():
                self._arch = None if arch is None else int(arch)
                self._features = features
                self._union_kernels = union_kernels
                self._union_functions = union_functions
                self._admitted = admitted
                self._usage = usage
                self._marginal_kernels = marginal
                self._locates = locates
                self._debloated = debloated
                self._generation = generation
                for name in self._TXN_COUNTERS:
                    setattr(self, name, counters.get(name, 0))
            # A wholesale install supersedes the journaled history: the
            # imported image itself becomes the journal's new baseline, so
            # a crash right after an import still recovers this state.
            self._wal_append_locked("import", {"state": payload})

    # -- eviction / reset -----------------------------------------------------

    def evict(self, workload_id: str) -> EvictionResult:
        """Remove every admission of ``workload_id`` and shrink the union.

        The union is rebuilt from the remaining admissions' recorded usage
        (no workload re-runs); only libraries whose union actually shrank
        are re-compacted, and libraries no remaining workload needs are
        dropped from the store.
        """
        with self._admission_lock:
            result = self._evict_locked(workload_id)
            self._wal_append_locked("evict", {"workload_id": workload_id})
            return result

    def _evict_locked(self, workload_id: str) -> EvictionResult:
        """The transactional body of :meth:`evict` (lock held; reentrant)."""
        with self._admission_lock:
            keep = [s for s in self._admitted if s.workload_id != workload_id]
            removed = len(self._admitted) - len(keep)
            if removed == 0:
                raise UsageError(
                    f"{workload_id!r} is not admitted; held: "
                    f"{sorted({s.workload_id for s in self._admitted})}"
                )
            kept_specs = {s for s in keep}
            with self._txn():
                self._usage = {
                    s: u for s, u in self._usage.items() if s in kept_specs
                }
                old_kernels = self._union_kernels
                old_functions = self._union_functions
                self._union_kernels = {}
                self._union_functions = {}
                self._marginal_kernels = []
                for spec in keep:
                    usage = self._usage[spec]
                    before = sum(
                        len(v) for v in self._union_kernels.values()
                    )
                    for soname, names in usage.kernels.items():
                        self._union_kernels.setdefault(
                            soname, set()
                        ).update(names)
                    for soname, idx in usage.functions.items():
                        have = self._union_functions.get(soname)
                        self._union_functions[soname] = (
                            np.union1d(have, idx)
                            if have is not None
                            else np.unique(np.asarray(idx, dtype=np.int64))
                        )
                    self._marginal_kernels.append(
                        sum(len(v) for v in self._union_kernels.values())
                        - before
                    )
                self._admitted = keep
                if not keep:
                    # Last admission gone: the store is empty, not "serving
                    # the zero-feature library set".
                    dropped = tuple(self._debloated)
                    self._arch = None
                    self._features = frozenset()
                    self._debloated = {}
                    self._locates = {}
                    self._generation += 1
                    return EvictionResult(
                        workload_id=workload_id,
                        generation=self._generation,
                        removed_admissions=removed,
                        recompacted=(),
                        dropped_libraries=dropped,
                    )
                self._features = frozenset().union(
                    *(s.features for s in keep)
                )

                libs = self.framework.libraries_for(self._features)
                keep_sonames = {lib.soname for lib in libs}
                dropped = tuple(
                    soname
                    for soname in self._debloated
                    if soname not in keep_sonames
                )
                shrunk = [
                    lib
                    for lib in libs
                    if self._union_kernels.get(lib.soname, set())
                    != old_kernels.get(lib.soname, set())
                    or not _fn_union_equal(
                        self._union_functions.get(lib.soname),
                        old_functions.get(lib.soname),
                    )
                ]
                # Shrunk unions invalidate the delta path's monotonicity
                # premise: drop the previous locate results so _process
                # takes the full locate path for them.
                for lib in shrunk:
                    self._locates.pop(lib.soname, None)
                results = self._process(shrunk, {})
                new_debloated = {
                    soname: d
                    for soname, d in self._debloated.items()
                    if soname in keep_sonames
                }
                for soname, gpu_res, d, _elapsed in results:
                    new_debloated[soname] = d
                    self._locates[soname] = gpu_res
                for soname in dropped:
                    self._locates.pop(soname, None)
                self._debloated = new_debloated
                self._generation += 1
                self._stat_recompactions += len(shrunk)
                return EvictionResult(
                    workload_id=workload_id,
                    generation=self._generation,
                    removed_admissions=removed,
                    recompacted=tuple(lib.soname for lib in shrunk),
                    dropped_libraries=dropped,
                )

    def reset(self) -> None:
        """Forget every admission and library; the generation still advances."""
        with self._admission_lock:
            with self._txn():
                self._arch = None
                self._features = frozenset()
                self._union_kernels = {}
                self._union_functions = {}
                self._admitted = []
                self._usage = {}
                self._marginal_kernels = []
                self._debloated = {}
                self._locates = {}
                self._generation += 1
            self._wal_append_locked("reset", {})

    # -- stats ----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        snap = self._snapshot
        out = {
            "generation": snap.generation,
            "admissions": self._stat_admissions,
            "duplicates": self._stat_duplicates,
            "libraries": len(snap.reductions),
            "union_kernels": snap.union_kernels,
            "union_functions": snap.union_functions,
            "recompactions": self._stat_recompactions,
            "untouched_served": self._stat_untouched_served,
            "usage_cache_hits": self._stat_usage_cache_hits,
            "rollbacks": self._stat_rollbacks,
            "rollback_recompactions": self._stat_rollback_recompactions,
        }
        wal = self._wal
        if wal is not None:
            out["wal_appended"] = wal.appended
            out["wal_records"] = wal.records_on_disk
            out["wal_failures"] = self._stat_wal_failures
        return out


def _fn_union_equal(a: np.ndarray | None, b: np.ndarray | None) -> bool:
    """Equality of two sorted-unique function unions (None == empty)."""
    a = a if a is not None else _EMPTY_INDICES
    b = b if b is not None else _EMPTY_INDICES
    return np.array_equal(a, b)


def _is_catalog_build(framework: Framework) -> bool:
    """True iff ``framework`` is the canonical default-archs catalog build.

    A memo-table identity peek (never generates anything): custom specs,
    ablation arch lists, and instances orphaned by a catalog-cache clear
    all fail, and the store runs uncached for them.
    """
    from repro.frameworks.catalog import is_canonical_build

    return is_canonical_build(framework)


def _catalog_build_key(
    framework: Framework,
) -> tuple[str, float, tuple[int, ...]] | None:
    """The (name, scale, archs) generation key of a catalog build, or None."""
    from repro.frameworks.catalog import build_key_for

    return build_key_for(framework)


def _check_spec(
    framework_name: str, pinned_arch: int | None, spec: WorkloadSpec
) -> None:
    """The one place admission preconditions are spelled out.

    Raises :class:`UsageError` for a workload targeting another framework
    or (when an architecture is pinned) another device architecture.
    """
    if spec.framework != framework_name:
        raise UsageError(
            f"{spec.workload_id} targets {spec.framework!r}, the union "
            f"holds {framework_name!r}"
        )
    if (
        pinned_arch is not None
        and spec.devices()[0].sm_arch != pinned_arch
    ):
        raise UsageError(
            "multi-workload debloating requires one device architecture"
        )


def validate_union_specs(
    framework_name: str, specs: list[WorkloadSpec]
) -> None:
    """Upfront usage validation for a whole spec list (``debloat_many``).

    Raises :class:`UsageError` - before any workload runs - for an empty
    list, a workload targeting a different framework, or a mix of device
    architectures.
    """
    if not specs:
        raise UsageError("debloat_many needs at least one workload")
    arch = specs[0].devices()[0].sm_arch
    for spec in specs:
        _check_spec(framework_name, arch, spec)

"""Incremental multi-workload debloat serving (paper §5 at serving scale).

The store (:class:`~repro.serving.store.DebloatStore`) holds one debloated
library set for the *union* of every admitted workload's usage and admits
new workloads by delta: only libraries whose union actually grew are
re-located/re-compacted.  The server
(:class:`~repro.serving.server.DebloatServer`) fronts a store with a
request queue and a worker pool so detections overlap while union merges
stay serialized.  The HTTP tier (:class:`~repro.serving.http.DebloatHttpServer`
over the wire schemas in :mod:`repro.serving.protocol`) exposes admission,
health, and metrics over asyncio HTTP/1.1 with bounded-queue backpressure.
"""

from repro.serving.http import BackgroundHttpServer, DebloatHttpServer
from repro.serving.server import AdmissionTicket, DebloatServer
from repro.serving.store import (
    AdmissionResult,
    DebloatStore,
    EvictionResult,
    StoreSnapshot,
)
from repro.serving.usage import WorkloadUsage, capture_usage
from repro.utils.retry import RetryPolicy

__all__ = [
    "AdmissionResult",
    "AdmissionTicket",
    "BackgroundHttpServer",
    "DebloatHttpServer",
    "DebloatServer",
    "DebloatStore",
    "EvictionResult",
    "RetryPolicy",
    "StoreSnapshot",
    "WorkloadUsage",
    "capture_usage",
]

"""Wire schemas and metrics for the HTTP/JSON serving tier.

This module is the *protocol* half of the asyncio front-end in
:mod:`repro.serving.http`: pure functions that decode request JSON into
typed pipeline objects (:class:`~repro.workloads.spec.WorkloadSpec`) and
encode pipeline results (:class:`~repro.serving.store.AdmissionResult`,
federation snapshots, health reports) back into JSON-safe payloads, plus
the Prometheus-text metrics registry the ``/metrics`` endpoint renders.
It knows nothing about sockets or HTTP framing - the split keeps the wire
contract testable without a running server, and keeps the server free of
schema details (thin routes over services).

Decode errors raise :class:`~repro.errors.ProtocolError` (a
:class:`~repro.errors.UsageError`), which the HTTP tier maps to a 400 -
a malformed request never reaches the admission queue.

Admit request schema (``POST /v1/admit``)::

    {"workload_id": "pytorch/train/mobilenetv2",   # required, Table-1 id
     "batch_size": 8,          # optional overrides building a variant
     "epochs": 2,
     "world_size": 1,
     "device": "t4",
     "loading_mode": "eager" | "lazy",
     "deadline_s": 5.0}        # optional per-request deadline

Batch schema (``POST /v1/admit_batch``)::

    {"workloads": [<admit object>, ...], "deadline_s": 30.0}
"""

from __future__ import annotations

import bisect
import json
import threading
from dataclasses import dataclass, field

from repro.cuda.driver import LoadingMode
from repro.errors import ProtocolError
from repro.serving.store import AdmissionResult, EvictionResult
from repro.workloads.spec import WorkloadSpec, workload_by_id

#: Spec fields an admit request may override (building a ``variant`` of
#: the catalog workload); maps JSON field -> WorkloadSpec field.
_VARIANT_FIELDS = {
    "batch_size": "batch_size",
    "epochs": "epochs",
    "world_size": "world_size",
    "device": "device_name",
    "loading_mode": "loading_mode",
}

_INT_FIELDS = {"batch_size", "epochs", "world_size"}


def decode_json(body: bytes) -> dict:
    """Parse a request body into a JSON object (dict) or raise 400."""
    if not body:
        raise ProtocolError("request body is empty; expected a JSON object")
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _deadline_of(payload: dict) -> float | None:
    deadline = payload.get("deadline_s")
    if deadline is None:
        return None
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
        raise ProtocolError("deadline_s must be a number")
    if deadline <= 0:
        raise ProtocolError("deadline_s must be positive")
    return float(deadline)


def parse_admit(payload: dict) -> tuple[WorkloadSpec, float | None]:
    """One admit object -> (spec, per-request deadline override)."""
    workload_id = payload.get("workload_id")
    if not isinstance(workload_id, str) or not workload_id:
        raise ProtocolError("admit request needs a string workload_id")
    try:
        spec = workload_by_id(workload_id)
    except Exception as exc:
        raise ProtocolError(str(exc)) from exc
    overrides: dict[str, object] = {}
    for wire_name, spec_name in _VARIANT_FIELDS.items():
        if wire_name not in payload:
            continue
        value = payload[wire_name]
        if wire_name in _INT_FIELDS:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"{wire_name} must be an integer")
            if value < 1:
                raise ProtocolError(f"{wire_name} must be >= 1")
        elif wire_name == "loading_mode":
            try:
                value = LoadingMode(value)
            except ValueError:
                raise ProtocolError(
                    f"loading_mode must be one of "
                    f"{[m.value for m in LoadingMode]}, got {value!r}"
                ) from None
        elif not isinstance(value, str):
            raise ProtocolError(f"{wire_name} must be a string")
        overrides[spec_name] = value
    if overrides:
        try:
            spec = spec.variant(**overrides)
        except Exception as exc:
            raise ProtocolError(str(exc)) from exc
    return spec, _deadline_of(payload)


def parse_admit_batch(
    payload: dict,
) -> tuple[list[WorkloadSpec], float | None]:
    """A batch request -> (specs in order, shared deadline override)."""
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ProtocolError(
            "admit_batch needs a non-empty 'workloads' array"
        )
    specs = []
    for pos, entry in enumerate(workloads):
        if not isinstance(entry, dict):
            raise ProtocolError(f"workloads[{pos}] must be an object")
        if "deadline_s" in entry:
            raise ProtocolError(
                "per-workload deadline_s is not supported in a batch; "
                "set it at the batch top level"
            )
        spec, _ = parse_admit(entry)
        specs.append(spec)
    return specs, _deadline_of(payload)


def parse_evict(payload: dict) -> tuple[str, str | None]:
    """An evict request -> (workload_id, optional framework)."""
    workload_id = payload.get("workload_id")
    if not isinstance(workload_id, str) or not workload_id:
        raise ProtocolError("evict request needs a string workload_id")
    framework = payload.get("framework")
    if framework is not None and not isinstance(framework, str):
        raise ProtocolError("framework must be a string")
    return workload_id, framework


# -- response encoding --------------------------------------------------------


def admission_to_payload(
    result: AdmissionResult,
    latency_s: float | None = None,
    queue_wait_s: float | None = None,
) -> dict:
    """One admission outcome as the ``/v1/admit`` response body."""
    out = {
        "workload_id": result.workload_id,
        "generation": result.generation,
        "new_kernels": result.new_kernels,
        "new_functions": result.new_functions,
        "recompacted": list(result.recompacted),
        "untouched": list(result.untouched),
        "added_libraries": list(result.added_libraries),
        "union_file_size": result.union_file_size,
        "union_file_size_after": result.union_file_size_after,
        "detection_run_s": result.detection_run_s,
        "locate_compact_s": result.locate_compact_s,
        "cache_source": "cache" if result.detection_cached else "run",
        "duplicate": result.duplicate,
    }
    if result.verification is not None:
        out["verification_ok"] = result.verification.ok
    if latency_s is not None:
        out["latency_s"] = round(latency_s, 6)
    if queue_wait_s is not None:
        out["queue_wait_s"] = round(queue_wait_s, 6)
    return out


def eviction_to_payload(result: EvictionResult) -> dict:
    return {
        "workload_id": result.workload_id,
        "generation": result.generation,
        "removed_admissions": result.removed_admissions,
        "recompacted": list(result.recompacted),
        "dropped_libraries": list(result.dropped_libraries),
    }


def snapshot_to_payload(snapshot) -> dict:
    """A :class:`~repro.api.federation.FederationSnapshot` as JSON."""
    shards = {}
    for name in snapshot.frameworks:
        shard = snapshot.shards[name]
        store = shard.store
        shards[name] = {
            "state": shard.state,
            "fingerprint": shard.fingerprint,
            "generation": store.generation,
            "workload_ids": list(store.workload_ids),
            "pinned": list(shard.pinned),
            "libraries": len(store.reductions),
            "union_kernels": store.union_kernels,
            "union_functions": store.union_functions,
            "total_file_size": store.total_file_size,
            "total_file_size_after": store.total_file_size_after,
            "file_reduction_pct": round(store.file_reduction_pct, 2),
        }
    return {
        "frameworks": list(snapshot.frameworks),
        "workloads": snapshot.workload_count,
        "total_file_size": snapshot.total_file_size,
        "total_file_size_after": snapshot.total_file_size_after,
        "shards": shards,
    }


def health_is_ok(health: dict) -> bool:
    """Whether a health report should answer ``/healthz`` with 200.

    Healthy means the server itself reports ``ok`` *and* its target
    (federation / store) does: a shard mid-recovery or degraded flips
    the endpoint to 503 so load balancers stop routing to this replica
    until admissions commit again.
    """
    if health.get("state") != "ok":
        return False
    target = health.get("target")
    if isinstance(target, dict) and target.get("state") != "ok":
        return False
    return True


# -- /metrics -----------------------------------------------------------------

#: Upper bounds (seconds) of the admission-latency histogram buckets.
#: Spans cache-served duplicates (~1 ms) through cold multi-library
#: compactions at paper scale (tens of seconds).
LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass
class LatencyHistogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics)."""

    buckets_s: tuple[float, ...] = LATENCY_BUCKETS_S
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.buckets_s)

    def observe(self, seconds: float) -> None:
        idx = bisect.bisect_left(self.buckets_s, seconds)
        if idx < len(self.counts):
            self.counts[idx] += 1
        self.total += 1
        self.sum_s += seconds

    def cumulative(self) -> list[tuple[float, int]]:
        """(le, cumulative count) pairs, excluding the +Inf bucket."""
        out, running = [], 0
        for le, count in zip(self.buckets_s, self.counts):
            running += count
            out.append((le, running))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile (bucket upper bound), for reporting."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        running = 0
        for le, count in zip(self.buckets_s, self.counts):
            running += count
            if running >= rank:
                return le
        return self.buckets_s[-1]


class MetricsRegistry:
    """Counters + histograms behind ``GET /metrics``.

    Mutations happen on the event loop *and* from executor callbacks, so
    a lock keeps increments and the rendered text consistent.  Rendering
    is plain Prometheus text exposition format, no client library.
    """

    def __init__(self, namespace: str = "negativa") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        #: (metric, labels tuple) -> count
        self._counters: dict[tuple[str, tuple[tuple[str, str], ...]], int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._help: dict[str, str] = {}

    def describe(self, metric: str, help_text: str) -> None:
        self._help.setdefault(metric, help_text)

    def inc(self, metric: str, amount: int = 1, **labels: str) -> None:
        key = (metric, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, metric: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(metric)
            if hist is None:
                hist = self._histograms[metric] = LatencyHistogram()
            hist.observe(seconds)

    def histogram(self, metric: str) -> LatencyHistogram:
        with self._lock:
            hist = self._histograms.get(metric)
            if hist is None:
                hist = self._histograms[metric] = LatencyHistogram()
            return hist

    def counter_total(self, metric: str) -> int:
        with self._lock:
            return sum(
                count for (name, _), count in self._counters.items()
                if name == metric
            )

    def render(self, gauges: dict[str, int | float] | None = None) -> str:
        """The full ``/metrics`` text body.

        ``gauges`` carries point-in-time values sampled by the caller
        (queue depths, store counters) - they are rendered as gauge
        metrics alongside the registry's own counters and histograms.
        """
        ns = self.namespace
        lines: list[str] = []
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                name: (
                    list(hist.counts), hist.total, hist.sum_s,
                    hist.buckets_s,
                )
                for name, hist in self._histograms.items()
            }
            help_text = dict(self._help)
        by_metric: dict[str, list] = {}
        for (metric, labels), count in sorted(counters.items()):
            by_metric.setdefault(metric, []).append((labels, count))
        for metric, rows in by_metric.items():
            full = f"{ns}_{metric}"
            if metric in help_text:
                lines.append(f"# HELP {full} {help_text[metric]}")
            lines.append(f"# TYPE {full} counter")
            for labels, count in rows:
                lines.append(f"{full}{_label_text(labels)} {count}")
        for name, value in sorted((gauges or {}).items()):
            full = f"{ns}_{name}"
            if name in help_text:
                lines.append(f"# HELP {full} {help_text[name]}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {value}")
        for metric, (counts, total, sum_s, buckets) in sorted(
            histograms.items()
        ):
            full = f"{ns}_{metric}"
            if metric in help_text:
                lines.append(f"# HELP {full} {help_text[metric]}")
            lines.append(f"# TYPE {full} histogram")
            running = 0
            for le, count in zip(buckets, counts):
                running += count
                lines.append(
                    f'{full}_bucket{{le="{_fmt_le(le)}"}} {running}'
                )
            lines.append(f'{full}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{full}_sum {sum_s:.6f}")
            lines.append(f"{full}_count {total}")
        return "\n".join(lines) + "\n"


def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _fmt_le(le: float) -> str:
    text = f"{le:.10f}".rstrip("0")
    return text + "0" if text.endswith(".") else text
